(* A small standard library written in the surface language, with full
   length/bounds invariants.  These go beyond the paper's listings and
   exercise parts of the system its benchmarks do not:

   - [split]   an existential *pair* of indices ([p:nat, q:nat | p+q=n])
   - [msort]   recursion through existential openings
   - [arev]    in-place array reversal whose bounds need div reasoning
   - [take]/[drop]  subset-sorted second arguments
   - [merge]/[insert]/[isort]  length arithmetic across clauses *)

let lists =
  {|
fun append(nil, ys) = ys
  | append(x :: xs, ys) = x :: append(xs, ys)
where append <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)

fun map f nil = nil
  | map f (x :: xs) = f(x) :: map f xs
where map <| {n:nat} ('a -> 'b) -> 'a list(n) -> 'b list(n)

fun zip(nil, nil) = nil
  | zip(x :: xs, y :: ys) = (x, y) :: zip(xs, ys)
where zip <| {n:nat} 'a list(n) * 'b list(n) -> ('a * 'b) list(n)

fun unzip(nil) = (nil, nil)
  | unzip((x, y) :: rest) = let
      val (xs, ys) = unzip(rest)
    in
      (x :: xs, y :: ys)
    end
where unzip <| {n:nat} ('a * 'b) list(n) -> 'a list(n) * 'b list(n)

fun take(nil, i) = nil
  | take(x :: xs, i) = if i = 0 then nil else x :: take(xs, i - 1)
where take <| {n:nat} {i:nat | i <= n} 'a list(n) * int(i) -> 'a list(i)

fun drop(nil, i) = nil
  | drop(x :: xs, i) = if i = 0 then x :: xs else drop(xs, i - 1)
where drop <| {n:nat} {i:nat | i <= n} 'a list(n) * int(i) -> 'a list(n-i)

fun last(x :: nil) = x
  | last(x :: y :: rest) = last(y :: rest)
where last <| {n:nat | n > 0} 'a list(n) -> 'a

fun insert(x, nil) = x :: nil
  | insert(x, y :: ys) = if x <= y then x :: y :: ys else y :: insert(x, ys)
where insert <| {n:nat} int * int list(n) -> int list(n+1)

fun isort(nil) = nil
  | isort(x :: xs) = insert(x, isort(xs))
where isort <| {n:nat} int list(n) -> int list(n)

fun merge(nil, ys) = ys
  | merge(xs, nil) = xs
  | merge(x :: xs, y :: ys) =
      if x <= y then x :: merge(xs, y :: ys) else y :: merge(x :: xs, ys)
where merge <| {m:nat} {n:nat} int list(m) * int list(n) -> int list(m+n)

fun split(nil) = (nil, nil)
  | split(x :: nil) = (x :: nil, nil)
  | split(x :: y :: rest) = let
      val (a, b) = split(rest)
    in
      (x :: a, y :: b)
    end
where split <| {n:nat} 'a list(n) -> [p:nat, q:nat | p + q = n] ('a list(p) * 'a list(q))

fun msort(nil) = nil
  | msort(x :: nil) = x :: nil
  | msort(x :: y :: rest) = let
      val (a, b) = split(x :: y :: rest)
    in
      merge(msort(a), msort(b))
    end
where msort <| {n:nat} int list(n) -> int list(n)
|}

let arrays =
  {|
fun afill(a, x) = let
  fun loop(i, m) = if i < m then (update(a, i, x); loop(i + 1, m)) else ()
  where loop <| {i:nat} int(i) * int(n) -> unit
in
  loop(0, length a)
end
where afill <| {n:nat} int array(n) * int -> unit

fun amap(f, a, b) = let
  fun loop(i, m) =
    if i < m then (update(b, i, f(sub(a, i))); loop(i + 1, m)) else ()
  where loop <| {i:nat} int(i) * int(n) -> unit
in
  loop(0, length a)
end
where amap <| {n:nat} ('a -> 'b) * 'a array(n) * 'b array(n) -> unit

fun afoldl(f, init, a) = let
  fun loop(i, m, acc) =
    if i < m then loop(i + 1, m, f(acc, sub(a, i))) else acc
  where loop <| {i:nat} int(i) * int(n) * 'b -> 'b
in
  loop(0, length a, init)
end
where afoldl <| {n:nat} ('b * 'a -> 'b) * 'b * 'a array(n) -> 'b

fun amax(a) = let
  fun loop(i, m, best) =
    if i < m then
      (if sub(a, i) > best then loop(i + 1, m, sub(a, i)) else loop(i + 1, m, best))
    else best
  where loop <| {i:nat | i > 0} int(i) * int(n) * int -> int
in
  loop(1, length a, sub(a, 0))
end
where amax <| {n:nat | n > 0} int array(n) -> int

fun arev(a) = let
  val half = length a div 2
  fun loop(i) =
    if i < half then
      let
        val t = sub(a, i)
      in
        (update(a, i, sub(a, length a - 1 - i));
         update(a, length a - 1 - i, t);
         loop(i + 1))
      end
    else ()
  where loop <| {i:nat} int(i) -> unit
in
  loop(0)
end
where arev <| {n:nat} int array(n) -> unit
|}

let source = lists ^ arrays
