(* The benchmark programs of Section 4, written in the surface language and
   annotated in the paper's style.  Notes on deviations:

   - Figure 1's [loop] annotation is tightened with [n <= p] (the connection
     between the loop bound and the array size), which the elaborator needs
     and the paper's listing elides; the same idiom (referring to an index
     variable of an enclosing annotation) appears in the paper's binary
     search, whose [look] refers to [size].
   - [bcopy]'s word loop carries the divisibility invariant [mod(i,4) = 0];
     discharging its bound obligations requires the integral tightening rule
     of Section 3.2, exactly as the paper describes. *)

(* --- Figure 1 ------------------------------------------------------------ *)

let dotprod =
  {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
|}

(* --- Figure 2 ------------------------------------------------------------ *)

let reverse =
  {|
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
|}

(* --- filter (Section 2.4) -------------------------------------------------- *)

let filter =
  {|
fun filter p nil = nil
  | filter p (x::xs) = if p(x) then x :: (filter p xs) else filter p xs
where filter <| {m:nat} ('a -> bool) -> 'a list(m) -> [n:nat | n <= m] 'a list(n)
|}

(* --- bcopy (Fox project byte copy; needs integral tightening) -------------- *)

let bcopy =
  {|
fun bcopy(src, dst) = let
  val len = length src
  fun wordloop(i, limit) =
    if i < limit then
      (update(dst, i,   sub(src, i));
       update(dst, i+1, sub(src, i+1));
       update(dst, i+2, sub(src, i+2));
       update(dst, i+3, sub(src, i+3));
       wordloop(i+4, limit))
    else ()
  where wordloop <| {i:nat | mod(i,4) = 0} int(i) * int(n - mod(n,4)) -> unit
  fun byteloop(i) =
    if i < len then (update(dst, i, sub(src, i)); byteloop(i+1)) else ()
  where byteloop <| {i:nat} int(i) -> unit
in
  (wordloop(0, len - len mod 4); byteloop(len - len mod 4))
end
where bcopy <| {n:nat} {m:nat | n <= m} int array(n) * int array(m) -> unit
|}

(* --- binary search (Figure 3) ------------------------------------------------ *)

let bsearch =
  {|
fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let
        val m = lo + (hi - lo) div 2
        val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => SOME(m, x)
        | GREATER => look(m+1, hi)
      end
    else NONE
  where look <| {l:nat | 0 <= l <= size} {h:int | 0 <= h+1 <= size}
               int(l) * int(h) -> (int * 'a) option
in
  look(0, length arr - 1)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> (int * 'a) option

fun cmpint(a, b) = if a < b then LESS else if a > b then GREATER else EQUAL
where cmpint <| int * int -> order

fun bsearchInt(key, arr) = bsearch cmpint (key, arr)
where bsearchInt <| {size:nat} int * int array(size) -> (int * int) option
|}

(* --- bubble sort --------------------------------------------------------------- *)

let bubblesort =
  {|
fun bsort(a) = let
  fun swap(i, j) = let
    val t = sub(a, i)
  in
    (update(a, i, sub(a, j)); update(a, j, t))
  end
  where swap <| {i:nat | i < n} {j:nat | j < n} int(i) * int(j) -> unit
  fun inner(j, m) =
    if j + 1 < m then
      (if sub(a, j) > sub(a, j+1) then swap(j, j+1) else ();
       inner(j+1, m))
    else ()
  where inner <| {m:nat | m <= n} {j:nat} int(j) * int(m) -> unit
  fun outer(m) =
    if m > 1 then (inner(0, m); outer(m - 1)) else ()
  where outer <| {m:nat | m <= n} int(m) -> unit
in
  outer(length a)
end
where bsort <| {n:nat} int array(n) -> unit
|}

(* --- matrix multiplication ------------------------------------------------------ *)

let matmult =
  {|
fun matmult(a, b, c) = let
  fun dotloop(i, j, k, acc) =
    if k < length (sub(a, i)) then
      dotloop(i, j, k+1, acc + sub(sub(a, i), k) * sub(sub(b, k), j))
    else acc
  where dotloop <| {i:nat | i < m} {j:nat | j < p} {k:nat} int(i) * int(j) * int(k) * int -> int
  fun coloop(i, j) =
    if j < length (sub(c, i)) then
      (update(sub(c, i), j, dotloop(i, j, 0, 0)); coloop(i, j+1))
    else ()
  where coloop <| {i:nat | i < m} {j:nat} int(i) * int(j) -> unit
  fun rowloop(i) =
    if i < length a then (coloop(i, 0); rowloop(i+1)) else ()
  where rowloop <| {i:nat} int(i) -> unit
in
  rowloop(0)
end
where matmult <| {m:nat} {n:nat} {p:nat}
                 int array(n) array(m) * int array(p) array(n) * int array(p) array(m) -> unit
|}

(* --- n-queens -------------------------------------------------------------------- *)

let queens =
  {|
fun queens(size) = let
  val board = (array(size, 0) : int array(n))
  fun safe(row, col) = let
    fun chk(k) =
      if k < col then
        (if sub(board, k) = row orelse abs(sub(board, k) - row) = col - k
         then false
         else chk(k+1))
      else true
    where chk <| {k:nat | k <= col} int(k) -> bool
  in
    chk(0)
  end
  where safe <| {col:nat | col < n} int * int(col) -> bool
  fun place(col) =
    if col >= size then 1
    else let
      fun tryrow(row, acc) =
        if row < size then
          (if safe(row, col) then
            (update(board, col, row);
             tryrow(row+1, acc + place(col+1)))
           else tryrow(row+1, acc))
        else acc
      where tryrow <| {r:nat} int(r) * int -> int
    in
      tryrow(0, 0)
    end
  where place <| {col:nat | col <= n} int(col) -> int
in
  place(0)
end
where queens <| {n:nat} int(n) -> int
|}

(* --- quick sort (Lomuto partition, after the SML/NJ library sort) ----------------- *)

let quicksort =
  {|
fun qsort(a) = let
  fun swap(i, j) = let
    val t = sub(a, i)
  in
    (update(a, i, sub(a, j)); update(a, j, t))
  end
  where swap <| {i:nat | i < n} {j:nat | j < n} int(i) * int(j) -> unit
  fun partition(lo, hi) = let
    val pivot = sub(a, hi)
    fun ploop(j, s) =
      if j < hi then
        (if sub(a, j) < pivot then (swap(s, j); ploop(j+1, s+1))
         else ploop(j+1, s))
      else s
    where ploop <| {j:nat | lo <= j <= hi} {s:nat | lo <= s <= j}
                  int(j) * int(s) -> [r:nat | lo <= r <= hi] int(r)
    val p = ploop(lo, lo)
  in
    (swap(p, hi); p)
  end
  where partition <| {lo:nat | lo < n} {hi:int | lo <= hi < n}
                    int(lo) * int(hi) -> [r:nat | lo <= r <= hi] int(r)
  fun sort(lo, hi) =
    if lo < hi then
      let val p = partition(lo, hi) in
        (sort(lo, p-1); sort(p+1, hi))
      end
    else ()
  where sort <| {lo:nat | lo <= n} {hi:int | 0 <= hi+1 <= n} int(lo) * int(hi) -> unit
in
  sort(0, length a - 1)
end
where qsort <| {n:nat} int array(n) -> unit
|}

(* --- towers of hanoi (moves recorded in a circular trace buffer) ------------------- *)

let hanoi =
  {|
fun hanoi(trace, heights, disks) = let
  fun move(count, from, to) =
    (update(heights, from, sub(heights, from) - 1);
     update(heights, to, sub(heights, to) + 1);
     update(trace, count mod 1024, from * 10 + to);
     count + 1)
  where move <| {f:nat | f < 3} {t:nat | t < 3} int * int(f) * int(t) -> int
  fun solve(k, from, to, via, count) =
    if k = 0 then count
    else let
      val c1 = solve(k - 1, from, via, to, count)
      val c2 = move(c1, from, to)
    in
      solve(k - 1, via, to, from, c2)
    end
  where solve <| {f:nat | f < 3} {t:nat | t < 3} {v:nat | v < 3}
                int * int(f) * int(t) * int(v) * int -> int
in
  solve(disks, 0, 2, 1, 0)
end
where hanoi <| int array(1024) * int array(3) * int -> int
|}

(* --- list access ------------------------------------------------------------------- *)

let listaccess =
  {|
fun access16(l) = let
  fun loop(i, acc) =
    if i < 16 then loop(i+1, acc + nth(l, i)) else acc
  where loop <| {i:nat} int(i) * int -> int
in
  loop(0, 0)
end
where access16 <| {n:nat | n >= 16} int list(n) -> int
|}

(* --- Knuth--Morris--Pratt string matching (Figure 5) --------------------------------- *)

let kmp =
  {|
type intPrefix = [i:int | 0 <= i + 1] int(i)

assert arrayPrefix <| {size:nat} int(size) * intPrefix -> intPrefix array(size)
and subPrefix <| {size:int, i:int | 0 <= i < size} intPrefix array(size) * int(i) -> intPrefix
and subPrefixCK <| intPrefix array * int -> intPrefix
and updatePrefix <| {size:int, i:int | 0 <= i < size}
                    intPrefix array(size) * int(i) * intPrefix -> unit

fun computePrefix(pat) = let
  val plen = length pat
  val prefixArray = arrayPrefix(plen, ~1)
  fun loop(i, j) =
    if j >= plen then ()
    else if i >= 0 andalso sub(pat, j) <> subCK(pat, i + 1) then
      loop(subPrefixCK(prefixArray, i), j)
    else if sub(pat, j) = subCK(pat, i + 1) then
      (updatePrefix(prefixArray, j, i + 1); loop(i + 1, j + 1))
    else
      (updatePrefix(prefixArray, j, ~1); loop(~1, j + 1))
  where loop <| {j:nat} intPrefix * int(j) -> unit
in
  (loop(~1, 1); prefixArray)
end
where computePrefix <| {p:nat | p > 0} int array(p) -> intPrefix array(p)

fun kmpMatch(str, pat) = let
  val strLen = length str
  val patLen = length pat
  val prefixArray = computePrefix(pat)
  fun mloop(s, p) =
    if s < strLen then
      (if p < patLen then
        (if sub(str, s) = sub(pat, p) then mloop(s + 1, p + 1)
         else if p = 0 then mloop(s + 1, p)
         else mloop(s, subPrefixCK(prefixArray, p - 1) + 1))
       else s - patLen)
    else if p = patLen then s - patLen
    else ~1
  where mloop <| {s:nat} {p:nat} int(s) * int(p) -> int
in
  mloop(0, 0)
end
where kmpMatch <| {s:nat} {q:nat | q > 0} int array(s) * int array(q) -> int
|}
