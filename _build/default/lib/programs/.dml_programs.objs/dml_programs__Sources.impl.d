lib/programs/sources.ml:
