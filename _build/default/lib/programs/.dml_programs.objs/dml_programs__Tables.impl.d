lib/programs/tables.ml: Compile Cycles Dml_core Dml_eval Format Gc List Pipeline Prims Programs Stdlib Sys Workloads
