lib/programs/stdlib_dml.ml:
