lib/programs/workloads.mli: Dml_eval
