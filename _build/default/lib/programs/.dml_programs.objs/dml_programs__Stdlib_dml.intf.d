lib/programs/stdlib_dml.mli:
