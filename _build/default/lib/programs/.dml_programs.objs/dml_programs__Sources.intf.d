lib/programs/sources.mli:
