lib/programs/tables.mli: Dml_solver Format Programs Solver
