lib/programs/workloads.ml: Array Dml_eval Format List Value
