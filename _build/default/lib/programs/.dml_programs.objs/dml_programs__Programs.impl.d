lib/programs/programs.ml: List Sources Workloads
