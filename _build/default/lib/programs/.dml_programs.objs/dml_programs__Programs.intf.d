lib/programs/programs.mli: Workloads
