examples/catch_bugs.mli:
