examples/kmp_search.ml: Array Char Compile Dml_core Dml_eval Dml_programs Format List Pipeline Prims String Value
