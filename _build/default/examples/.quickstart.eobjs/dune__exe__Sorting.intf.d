examples/sorting.mli:
