examples/kmp_search.mli:
