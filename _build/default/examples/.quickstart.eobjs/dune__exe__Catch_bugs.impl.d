examples/catch_bugs.ml: Dml_core Dml_lang Dml_solver Elab Format List Pipeline
