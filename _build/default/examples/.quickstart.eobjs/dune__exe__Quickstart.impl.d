examples/quickstart.ml: Compile Dml_constr Dml_core Dml_eval Dml_solver Elab Format List Pipeline Prims Value
