examples/sorting.ml: Array Compile Dml_core Dml_eval Dml_programs Format List Pipeline Prims Value
