examples/text_scan.mli:
