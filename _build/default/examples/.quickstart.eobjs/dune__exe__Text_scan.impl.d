examples/text_scan.ml: Compile Dml_core Dml_eval Format List Pipeline Prims Value
