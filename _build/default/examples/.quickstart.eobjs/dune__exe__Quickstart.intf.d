examples/quickstart.mli:
