(* End-to-end property: template-generated loop programs with provably safe
   access patterns must check, and their off-by-one mutants must be
   rejected.  This fuzzes the whole pipeline (parser, inference,
   elaboration, solver) on the paper's core scenario. *)

open Dml_core

(* A loop over an array of size [n] with: start [lo >= 0], guard
   [i < n - slack] (or <=), and accesses at [i + off].  The access is in
   bounds for all runs iff [off <= slack] (strict guard) or [off < slack]
   (non-strict), given [lo >= 0]. *)
type template = { t_lo : int; t_strict : bool; t_slack : int; t_off : int }

let source_of { t_lo; t_strict; t_slack; t_off } =
  let guard = if t_strict then "<" else "<=" in
  Printf.sprintf
    {|
fun sumall(v) = let
  fun loop(i, acc) =
    if i %s length v - %d then loop(i + 1, acc + sub(v, i + %d)) else acc
  where loop <| {i:nat} int(i) * int -> int
in
  loop(%d, 0)
end
where sumall <| {n:nat} int array(n) -> int
|}
    guard t_slack t_off t_lo

let is_safe { t_lo; t_strict; t_slack; t_off } =
  (* i ranges over naturals satisfying the guard; the access i + off needs
     i + off < n.  Worst case: i = n - slack - 1 (strict) or n - slack
     (non-strict), so safety is off < slack + 1 (strict) / off < slack. *)
  t_lo >= 0 && (if t_strict then t_off <= t_slack else t_off < t_slack)

let gen_template =
  QCheck.make
    ~print:(fun t -> source_of t)
    QCheck.Gen.(
      map
        (fun (lo, strict, slack, off) ->
          { t_lo = lo; t_strict = strict; t_slack = slack; t_off = off })
        (quad (int_range 0 3) bool (int_range 0 4) (int_range 0 5)))

let verdict t =
  match Pipeline.check_s (Session.create ()) (source_of t) with
  | Ok r -> r.Pipeline.rp_valid
  | Error f -> Alcotest.failf "static failure: %s" (Pipeline.failure_to_string f)

let prop_safety_decides_verdict =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"verdict = arithmetic safety" gen_template (fun t ->
         verdict t = is_safe t))

(* Safe templates must also run without tripping their checked primitives. *)
let prop_safe_templates_run =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"safe templates execute" gen_template (fun t ->
         QCheck.assume (is_safe t);
         match Pipeline.check_valid_s (Session.create ()) (source_of t) with
         | Error _ -> false
         | Ok r ->
             let ce = Dml_eval.Compile.initial_fast Dml_eval.Prims.Checked () in
             let ce = Dml_eval.Compile.run_program ce r.Pipeline.rp_tprog in
             let f = Dml_eval.Compile.lookup ce "sumall" in
             let arr = Dml_eval.Value.of_int_array (Array.init 9 (fun i -> i)) in
             (match Dml_eval.Value.as_fun f arr with
             | Dml_eval.Value.Vint _ -> true
             | _ -> false
             | exception Dml_eval.Prims.Subscript -> false)))

(* Robustness: the pipeline is a total function from source text to a
   report or a staged failure — arbitrary token soup (including unbalanced
   delimiters, stray annotations, and truncated declarations) must never
   raise out of [Pipeline.check_s]. *)
let token_fragments =
  [|
    "fun "; "val "; "let "; "in "; "end "; "if "; "then "; "else "; "case ";
    "of "; "fn "; "where "; "handle "; "raise "; "datatype "; "typeref ";
    "assert "; "exception "; "sub"; "update"; "array"; "length "; "nth ";
    "("; ")"; "{"; "}"; "["; "]"; "[|"; "|]"; "|"; "<|"; "=>"; "->"; "=";
    "<"; "<="; "+"; "-"; "*"; "/"; ","; ";"; ":"; "."; "~"; "_"; "'"; "\"";
    "x"; "y "; "it "; "a1 "; "0 "; "1 "; "42 "; "999999999999 "; "nat";
    "int"; "bool "; "true "; "false "; "\n"; "  "; ";;"; "#"; "$"; "@";
  |]

let gen_token_soup =
  QCheck.make
    ~print:String.escaped
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_range 0 40) (oneofa token_fragments)))

let prop_check_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"Pipeline.check_s never raises" gen_token_soup
       (fun src ->
         match Pipeline.check_s (Session.create ()) src with Ok _ -> true | Error _ -> true))

let () =
  Alcotest.run "fuzz_pipeline"
    [
      ( "templates",
        [ prop_safety_decides_verdict; prop_safe_templates_run ] );
      ("robustness", [ prop_check_total ]);
    ]
