(* dml-server/1 and the dmld server: request parsing and per-request
   overrides, a golden request/response transcript covering every request
   kind, malformed- and oversized-frame handling on a live stdio loop, the
   warm-session oracle (a repeated check of an unchanged program does zero
   solver calls and returns the identical document), and multi-client
   byte-identity over a real Unix-domain socket.

   Regenerating the golden transcript after an intentional schema change:

     DML_SERVER_GOLDEN=$PWD/test/server_golden.json dune exec test/test_server.exe *)

open Dml_server
module J = Dml_obs.Json
module Session = Dml_core.Session
module Pipeline = Dml_core.Pipeline
module Report_json = Dml_core.Report_json

let src_ok = "val a = array(4, 0)\nval x = sub(a, 2)\n"
let src_parse_err = "val x = "

(* schedule-dependent report fields plus the server's own volatile figures *)
let volatile =
  Report_json.schedule_dependent_fields @ [ "pid"; "uptime_s"; "counters"; "histograms" ]

let scrub v = J.scrub ~keys:volatile v

let obj fields = J.Obj fields
let str s = J.String s

let cached_options =
  { Session.default_options with Session.op_cache = Some Dml_cache.Cache.default_config }

let incr_options = { Session.default_options with Session.op_incremental = true }

(* --- request parsing --------------------------------------------------------- *)

let parse_error v =
  match Protocol.parse_request v with
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected a parse error"

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_error_mentions what v sub =
  let e = parse_error v in
  Alcotest.(check bool) (what ^ ": " ^ e) true (contains ~sub e)

let test_parse_errors () =
  check_error_mentions "missing op" (obj []) "missing \"op\"";
  check_error_mentions "op not string" (obj [ ("op", J.Int 3) ]) "\"op\" must be a string";
  check_error_mentions "unknown op" (obj [ ("op", str "frobnicate") ]) "unknown op";
  check_error_mentions "check without source" (obj [ ("op", str "check") ]) "missing \"source\"";
  check_error_mentions "unknown field"
    (obj [ ("op", str "check"); ("source", str "x"); ("sauce", str "y") ])
    "unknown field \"sauce\"";
  check_error_mentions "batch programs not array"
    (obj [ ("op", str "batch"); ("programs", str "x") ])
    "must be an array";
  check_error_mentions "batch entry without source"
    (obj [ ("op", str "batch"); ("programs", J.List [ obj [ ("program", str "p") ] ]) ])
    "missing \"source\"";
  check_error_mentions "status with stray field"
    (obj [ ("op", str "status"); ("source", str "x") ])
    "unknown field \"source\""

let test_parse_ok () =
  (match
     Protocol.parse_request
       (obj [ ("op", str "check"); ("id", J.Int 7); ("source", str "x"); ("program", str "p") ])
   with
  | Ok { Protocol.id; req = Protocol.Check { program; source; options } } ->
      Alcotest.(check bool) "id echoed" true (id = J.Int 7);
      Alcotest.(check (option string)) "program" (Some "p") program;
      Alcotest.(check string) "source" "x" source;
      Alcotest.(check bool) "no options" true (options = None)
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error e -> Alcotest.fail e);
  match
    Protocol.parse_request
      (obj
         [
           ("op", str "batch");
           ( "programs",
             J.List [ obj [ ("source", str "a") ]; obj [ ("source", str "b"); ("program", str "q") ] ]
           );
         ])
  with
  | Ok { Protocol.req = Protocol.Batch { programs; _ }; _ } ->
      Alcotest.(check (list (pair string string)))
        "names default positionally" [ ("p0", "a"); ("q", "b") ] programs
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error e -> Alcotest.fail e

let test_overrides () =
  let base = Session.default_options in
  (match
     Protocol.apply_overrides base
       (obj
          [
            ("solver", str "simplex");
            ("escalate", J.Bool true);
            ("fuel", J.Int 10);
            ("mode", str "degrade");
          ])
   with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "solver" true
        (o.Session.op_solve.Session.sc_method = Dml_solver.Solver.Simplex_rational);
      Alcotest.(check bool) "escalate" true o.Session.op_solve.Session.sc_escalate;
      Alcotest.(check (option int)) "fuel" (Some 10) o.Session.op_solve.Session.sc_fuel;
      Alcotest.(check bool) "mode" true (o.Session.op_mode = Session.Degrade);
      Alcotest.(check bool) "fingerprint moved" true
        (Session.fingerprint o <> Session.fingerprint base));
  (match Protocol.apply_overrides base (obj [ ("bogus", J.Int 1) ]) with
  | Error e -> Alcotest.(check bool) ("bogus rejected: " ^ e) true (contains ~sub:"bogus" e)
  | Ok _ -> Alcotest.fail "unknown option accepted");
  match Protocol.apply_overrides base (obj [ ("solver", str "nope") ]) with
  | Error e -> Alcotest.(check bool) ("bad solver rejected: " ^ e) true (contains ~sub:"nope" e)
  | Ok _ -> Alcotest.fail "unknown solver accepted"

(* --- golden transcript -------------------------------------------------------- *)

(* One request of every kind (plus a malformed one) against a fresh server,
   scrubbed of volatile fields.  The request counters and memo figures in
   the status document are deterministic because the transcript order is. *)
let transcript_requests =
  [
    obj [ ("op", str "check"); ("id", J.Int 1); ("program", str "ok.dml"); ("source", str src_ok) ];
    obj
      [
        ("op", str "check");
        ("id", J.Int 2);
        ("program", str "broken.dml");
        ("source", str src_parse_err);
      ];
    obj
      [
        ("op", str "batch");
        ("id", J.Int 3);
        ( "programs",
          J.List
            [
              obj [ ("program", str "ok.dml"); ("source", str src_ok) ];
              obj [ ("program", str "broken.dml"); ("source", str src_parse_err) ];
            ] );
      ];
    obj [ ("op", str "status"); ("id", J.Int 4) ];
    obj [ ("op", str "metrics"); ("id", J.Int 5) ];
    obj [ ("op", str "frobnicate"); ("id", J.Int 6) ];
    obj [ ("op", str "shutdown"); ("id", J.Int 7) ];
  ]

let run_transcript () =
  let server = Server.create () in
  let responses = List.map (fun req -> scrub (Server.handle server req)) transcript_requests in
  Alcotest.(check bool) "shutdown request stops the server" true (Server.stopping server);
  J.List responses

let test_golden_transcript () =
  let got = run_transcript () in
  match Sys.getenv_opt "DML_SERVER_GOLDEN" with
  | Some out -> (
      match J.write_file out got with
      | Ok () -> print_endline ("wrote golden transcript to " ^ out)
      | Error msg -> Alcotest.fail msg)
  | None -> (
      let path =
        if Sys.file_exists "server_golden.json" then "server_golden.json"
        else "test/server_golden.json"
      in
      let ic = open_in path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match J.of_string raw with
      | Error msg -> Alcotest.fail ("golden file does not parse: " ^ msg)
      | Ok expected ->
          Alcotest.(check string) "transcript matches the golden file" (J.to_string expected)
            (J.to_string got))

(* --- live stdio loop: framing errors ------------------------------------------ *)

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n = Unix.write fd buf ofs len in
    write_all fd buf (ofs + n) (len - n)
  end

let recv_ok what fd =
  match Protocol.recv fd with
  | Ok v -> v
  | Error _ -> Alcotest.fail (what ^ ": expected a response frame")

let expect_error_code what code resp =
  (match J.member "ok" resp with
  | Some (J.Bool false) -> ()
  | _ -> Alcotest.fail (what ^ ": expected ok=false"));
  match J.member "error" resp with
  | Some err -> (
      match J.member "code" err with
      | Some (J.String c) -> Alcotest.(check string) (what ^ ": error code") code c
      | _ -> Alcotest.fail (what ^ ": error without code"))
  | None -> Alcotest.fail (what ^ ": no error object")

let test_stdio_frames () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close resp_r;
      (try Server.serve_stdio ~input:req_r ~output:resp_w (Server.create ()) with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      (* a valid request round-trips *)
      Protocol.send req_w (obj [ ("op", str "check"); ("id", J.Int 1); ("source", str src_ok) ]);
      let r1 = recv_ok "check" resp_r in
      Alcotest.(check bool) "check ok" true (J.member "ok" r1 = Some (J.Bool true));
      Alcotest.(check bool) "id echoed" true (J.member "id" r1 = Some (J.Int 1));
      (* a well-framed but unparseable payload is rejected and the
         connection survives *)
      Dml_par.Frame.write_raw req_w "this is not json";
      expect_error_code "bad json" "bad-json" (recv_ok "bad json" resp_r);
      Protocol.send req_w (obj [ ("op", str "status") ]);
      Alcotest.(check bool) "connection survives bad json" true
        (J.member "ok" (recv_ok "status" resp_r) = Some (J.Bool true));
      (* an oversized frame header gets an error response and closes the
         stream (it cannot be resynchronized) *)
      let header = Bytes.create 8 in
      Bytes.set_int64_be header 0 (Int64.of_int (Protocol.max_frame + 1));
      write_all req_w header 0 8;
      expect_error_code "oversized" "oversized-frame" (recv_ok "oversized" resp_r);
      (match Protocol.recv resp_r with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "stream should close after an oversized frame");
      Unix.close req_w;
      Unix.close resp_r;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0)

(* --- warm-session oracle ------------------------------------------------------ *)

let counter_of metrics name =
  match J.member "result" metrics with
  | Some result -> (
      match J.member "counters" result with
      | Some counters -> (
          match J.member name counters with Some (J.Int n) -> n | _ -> 0)
      | None -> 0)
  | None -> Alcotest.fail "metrics response has no result"

let result_of what resp =
  match J.member "result" resp with
  | Some r -> r
  | None -> Alcotest.fail (what ^ ": response has no result")

(* The acceptance oracle: the second identical check is answered from the
   program memo — the identical document, zero solver calls (verified
   through the metrics request), and "memo": true in the envelope. *)
let test_warm_oracle () =
  let server = Server.create ~options:cached_options () in
  let check_req id =
    obj
      [
        ("op", str "check");
        ("id", J.Int id);
        ("program", str "warm.dml");
        ("source", str Dml_programs.Sources.bsearch);
      ]
  in
  let metrics_req = obj [ ("op", str "metrics") ] in
  let r1 = Server.handle server (check_req 1) in
  let m1 = Server.handle server metrics_req in
  let r2 = Server.handle server (check_req 2) in
  let m2 = Server.handle server metrics_req in
  Alcotest.(check bool) "first check computes" true (J.member "memo" r1 = None);
  Alcotest.(check bool) "second check is memoized" true (J.member "memo" r2 = Some (J.Bool true));
  Alcotest.(check string) "identical result documents"
    (J.to_string (result_of "r1" r1))
    (J.to_string (result_of "r2" r2));
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " unchanged by the warm repeat")
        (counter_of m1 name) (counter_of m2 name))
    [ "solver.goals"; "solver.uncached_solves"; "pipeline.runs"; "cache.lookups" ];
  (* different options fingerprint -> different memo key -> a fresh check *)
  let r3 =
    Server.handle server
      (obj
         [
           ("op", str "check");
           ("id", J.Int 3);
           ("program", str "warm.dml");
           ("source", str Dml_programs.Sources.bsearch);
           ("options", obj [ ("solver", str "simplex") ]);
         ])
  in
  Alcotest.(check bool) "override misses the memo" true (J.member "memo" r3 = None);
  Alcotest.(check bool) "override is still ok" true (J.member "ok" r3 = Some (J.Bool true))

(* --- concurrent clients over a real socket ------------------------------------ *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let test_concurrent_clients () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dml_test_server.sock" in
  (try Sys.remove path with Sys_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try Server.serve_unix (Server.create ~options:cached_options ()) ~path with _ -> ());
      Unix._exit 0
  | pid ->
      let rec await n =
        if Sys.file_exists path then ()
        else if n = 0 then Alcotest.fail "server socket never appeared"
        else begin
          Unix.sleepf 0.05;
          await (n - 1)
        end
      in
      await 100;
      (* four clients connect, all send before any reads: the select loop
         must multiplex them without losing or crossing responses *)
      let conns = List.init 4 (fun _ -> connect path) in
      List.iteri
        (fun i fd ->
          Protocol.send fd
            (obj
               [
                 ("op", str "check");
                 ("id", J.Int i);
                 ("program", str "bcopy");
                 ("source", str Dml_programs.Sources.bcopy);
               ]))
        conns;
      let responses = List.mapi (fun i fd -> recv_ok (Printf.sprintf "client %d" i) fd) conns in
      List.iteri
        (fun i resp ->
          Alcotest.(check bool) (Printf.sprintf "client %d ok" i) true
            (J.member "ok" resp = Some (J.Bool true));
          Alcotest.(check bool)
            (Printf.sprintf "client %d id" i)
            true
            (J.member "id" resp = Some (J.Int i)))
        responses;
      (* all four result documents are byte-identical to each other and to a
         one-shot in-process check (modulo schedule-dependent fields) *)
      let results =
        List.map (fun r -> J.to_string (scrub (result_of "client" r))) responses
      in
      List.iter
        (fun r -> Alcotest.(check string) "identical across clients" (List.hd results) r)
        results;
      let oneshot =
        let session = Session.create ~options:cached_options () in
        match Pipeline.check_s session Dml_programs.Sources.bcopy with
        | Ok rp -> Report_json.of_report ~program:"bcopy" rp
        | Error f -> Alcotest.fail (Pipeline.failure_to_string f)
      in
      Alcotest.(check string) "byte-identical to a one-shot check"
        (J.to_string (scrub oneshot))
        (List.hd results);
      (* shut the server down through one of the connections *)
      Protocol.send (List.hd conns) (obj [ ("op", str "shutdown") ]);
      Alcotest.(check bool) "shutdown ok" true
        (J.member "ok" (recv_ok "shutdown" (List.hd conns)) = Some (J.Bool true));
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* --- fault tolerance under a worker pool -------------------------------------- *)

(* The robustness oracle: with the pool's fault hooks armed, every faulted
   request still gets a well-formed dml-server/1 error document ("timeout" /
   "worker-lost" / "overloaded"), and the parent's warm state — memo,
   session cache, serve loop — survives untouched.  The hooks key on the
   *program name* ([Runner.test_injection] in the worker), so one poisoned
   name faults deterministically while the rest of the mix stays healthy. *)

let crash_name = "inject-crash.dml"
let hang_name = "inject-hang.dml"

let with_fault_env f =
  Unix.putenv "DML_PAR_TEST_CRASH" crash_name;
  Unix.putenv "DML_PAR_TEST_HANG" hang_name;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DML_PAR_TEST_CRASH" "";
      Unix.putenv "DML_PAR_TEST_HANG" "")
    f

let pooled_options = { cached_options with Session.op_jobs = Some 1 }

let fork_pooled_server ?(max_queue = 256) ?(options = pooled_options) ~path () =
  (try Sys.remove path with Sys_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try
         Server.serve_unix
           (Server.create ~options ~request_timeout_ms:300 ~max_queue ())
           ~path
       with _ -> ());
      Unix._exit 0
  | pid ->
      let rec await n =
        if Sys.file_exists path then ()
        else if n = 0 then Alcotest.fail "pooled server socket never appeared"
        else begin
          Unix.sleepf 0.05;
          await (n - 1)
        end
      in
      await 100;
      pid

let check_req ?(id = 0) name source =
  obj
    [
      ("op", str "check");
      ("id", J.Int id);
      ("program", str name);
      ("source", str source);
    ]

let shutdown_and_reap fd pid =
  Protocol.send fd (obj [ ("op", str "shutdown") ]);
  ignore (recv_ok "shutdown" fd);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0)

(* --- incremental rechecking: check_patch -------------------------------------- *)

let patch_req ?(id = 0) ?base ?(program = "buf.dml") source =
  obj
    ([
       ("op", str "check_patch");
       ("id", J.Int id);
       ("program", str program);
       ("source", str source);
     ]
    @ match base with None -> [] | Some b -> [ ("base", str b) ])

let incr_of what resp =
  match J.member "incr" (result_of what resp) with
  | Some v -> v
  | None -> Alcotest.fail (what ^ ": response has no incr object")

let check_of what resp =
  match J.member "check" (result_of what resp) with
  | Some v -> v
  | None -> Alcotest.fail (what ^ ": response has no check document")

let incr_int what field resp =
  match J.member field (incr_of what resp) with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "%s: incr.%s missing or not an int" what field

let incr_source_id what resp =
  match J.member "source_id" (incr_of what resp) with
  | Some (J.String s) -> s
  | _ -> Alcotest.fail (what ^ ": incr.source_id missing")

let expect_ok what resp =
  Alcotest.(check bool) (what ^ ": ok") true (J.member "ok" resp = Some (J.Bool true))

(* The patch transcript: an establishing check (no base), a patch that adds
   one declaration (only the new declaration re-solved), and a patch that
   reverts to the base — whose response document must be the establishing
   check's document byte-for-byte, straight from the memo. *)
let test_patch_roundtrip () =
  let server = Server.create ~options:incr_options () in
  let patched_src = src_ok ^ "val y = sub(a, 3)\n" in
  let r1 = Server.handle server (patch_req ~id:1 src_ok) in
  expect_ok "establishing check" r1;
  Alcotest.(check bool) "establishing check computes" true (J.member "memo" r1 = None);
  let units = incr_int "r1" "units" r1 in
  Alcotest.(check bool) "the base has units" true (units > 0);
  Alcotest.(check int) "a cold check dirties every unit" units (incr_int "r1" "dirty" r1);
  Alcotest.(check int) "a cold check reuses nothing" 0 (incr_int "r1" "reused" r1);
  let base_id = incr_source_id "r1" r1 in
  let r2 = Server.handle server (patch_req ~id:2 ~base:base_id patched_src) in
  expect_ok "patch" r2;
  Alcotest.(check int) "only the new declaration is dirty" 1 (incr_int "r2" "dirty" r2);
  Alcotest.(check int) "every old declaration is reused" units (incr_int "r2" "reused" r2);
  Alcotest.(check int) "units grew by the new declaration" (units + 1) (incr_int "r2" "units" r2);
  Alcotest.(check bool) "the dirty declaration cost solver work" true
    (incr_int "r2" "solver_calls" r2 >= 1);
  let patched_id = incr_source_id "r2" r2 in
  let r3 = Server.handle server (patch_req ~id:3 ~base:patched_id src_ok) in
  Alcotest.(check bool) "the reverting patch is answered from the memo" true
    (J.member "memo" r3 = Some (J.Bool true));
  Alcotest.(check int) "the revert dirties nothing" 0 (incr_int "r3" "dirty" r3);
  Alcotest.(check int) "the revert makes no solver calls" 0 (incr_int "r3" "solver_calls" r3);
  Alcotest.(check int) "the revert reuses every unit" units (incr_int "r3" "reused" r3);
  Alcotest.(check string) "the revert restores the original source id" base_id
    (incr_source_id "r3" r3);
  Alcotest.(check string) "the revert restores the original document byte-for-byte"
    (J.to_string (check_of "r1" r1))
    (J.to_string (check_of "r3" r3))

let test_patch_rejections () =
  (* parse-level strictness: the op rejects fields it does not know *)
  check_error_mentions "check_patch unknown field"
    (obj [ ("op", str "check_patch"); ("source", str "x"); ("sauce", str "y") ])
    "unknown field \"sauce\"";
  check_error_mentions "check_patch without source"
    (obj [ ("op", str "check_patch") ])
    "missing \"source\"";
  check_error_mentions "check_patch base must be a string"
    (obj [ ("op", str "check_patch"); ("source", str "x"); ("base", J.Int 3) ])
    "\"base\" must be a string";
  (* a null base is the establishing form, same as leaving it out *)
  (match
     Protocol.parse_request
       (obj [ ("op", str "check_patch"); ("source", str "x"); ("base", J.Null) ])
   with
  | Ok { Protocol.req = Protocol.Check_patch { base = None; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "null base should parse as no base"
  | Error e -> Alcotest.fail e);
  (* check_patch needs the --incremental warm state *)
  expect_error_code "check_patch without --incremental" "bad-request"
    (Server.handle (Server.create ()) (patch_req src_ok));
  let server = Server.create ~options:incr_options () in
  (* an id the server has never answered for is rejected, not guessed at *)
  expect_error_code "unknown base id" "unknown-base"
    (Server.handle server (patch_req ~base:"deadbeef" src_ok));
  (* a failed check is never registered, so it cannot serve as a base *)
  let rf = Server.handle server (patch_req ~id:9 ~program:"broken.dml" src_parse_err) in
  expect_ok "failed source still answers" rf;
  Alcotest.(check bool) "failure documents carry valid=false" true
    (J.member "valid" (check_of "rf" rf) = Some (J.Bool false));
  expect_error_code "a failed source cannot serve as a base" "unknown-base"
    (Server.handle server (patch_req ~base:(incr_source_id "rf" rf) src_ok));
  (* inference is whole-program; the combination is refused *)
  expect_error_code "infer override rejected" "bad-request"
    (Server.handle server
       (obj
          [
            ("op", str "check_patch");
            ("source", str src_ok);
            ("options", obj [ ("infer", J.Bool true) ]);
          ]))

(* check_patch racing identical in-flight checks through the dispatch
   layer's memo-key coalescing.  The single worker is wedged on an injected
   hang, so: the two identical plain checks provably coalesce on their memo
   key (one computation, byte-identical responses, no memo flag on either),
   while the check_patch for the same program/source is computed inline in
   the parent and answers before the pool drains. *)
let test_patch_coalescing () =
  with_fault_env (fun () ->
      let path = Filename.concat (Filename.get_temp_dir_name ()) "dml_test_patch.sock" in
      let options = { pooled_options with Session.op_incremental = true } in
      let pid = fork_pooled_server ~options ~path () in
      let wedge = connect path in
      let c1 = connect path in
      let c2 = connect path in
      let c3 = connect path in
      let race_src = Dml_programs.Sources.bsearch in
      let race_req id = check_req ~id "race.dml" race_src in
      (* wedge the only worker, then put two identical checks in flight *)
      Protocol.send wedge (check_req ~id:1 hang_name src_ok);
      Unix.sleepf 0.1;
      Protocol.send c1 (race_req 2);
      Unix.sleepf 0.05;
      Protocol.send c2 (race_req 3);
      Unix.sleepf 0.05;
      Protocol.send c3 (patch_req ~id:4 ~program:"race.dml" race_src);
      (* the parent answers the patch inline while the pool is still wedged *)
      let r3 = recv_ok "check_patch" c3 in
      expect_ok "check_patch under load" r3;
      Alcotest.(check bool) "cold establishing patch dirties every unit" true
        (incr_int "r3" "units" r3 = incr_int "r3" "dirty" r3 && incr_int "r3" "units" r3 > 0);
      let r1 = recv_ok "first racer" c1 in
      let r2 = recv_ok "second racer" c2 in
      expect_ok "first racer" r1;
      expect_ok "second racer" r2;
      (* coalesced, not memoized: the joined request carries no memo flag,
         and both responses serialize the one computed document *)
      Alcotest.(check bool) "racers are not memo hits" true
        (J.member "memo" r1 = None && J.member "memo" r2 = None);
      Alcotest.(check string) "coalesced racers share one document byte-for-byte"
        (J.to_string (result_of "r1" r1))
        (J.to_string (result_of "r2" r2));
      (* the worker's full check and the parent's incremental check agree
         (modulo scheduling and the per-process solver-cache figures) *)
      let scrub_cmp v = J.scrub ~keys:(volatile @ [ "solver" ]) v in
      Alcotest.(check string) "patch document matches the pooled full check"
        (J.to_string (scrub_cmp (result_of "r1" r1)))
        (J.to_string (scrub_cmp (check_of "r3" r3)));
      (* the wedged request degrades to a structured timeout, as usual *)
      expect_error_code "wedged request" "timeout" (recv_ok "wedge" wedge);
      (* a repeat patch lands on the memo the racers populated *)
      Protocol.send c3 (patch_req ~id:5 ~base:(incr_source_id "r3" r3) ~program:"race.dml" race_src);
      let r4 = recv_ok "repeat patch" c3 in
      Alcotest.(check bool) "repeat patch is a memo hit" true
        (J.member "memo" r4 = Some (J.Bool true));
      Alcotest.(check int) "repeat patch dirties nothing" 0 (incr_int "r4" "dirty" r4);
      Alcotest.(check string) "repeat patch returns the racers' document verbatim"
        (J.to_string (result_of "r1" r1))
        (J.to_string (check_of "r4" r4));
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ c1; c2; wedge ];
      shutdown_and_reap c3 pid)

(* --- faulted pools: crash, hang, shedding ------------------------------------- *)

let test_pool_faults () =
  with_fault_env (fun () ->
      let path = Filename.concat (Filename.get_temp_dir_name ()) "dml_test_faults.sock" in
      let pid = fork_pooled_server ~path () in
      let fd = connect path in
      let roundtrip what req =
        Protocol.send fd req;
        recv_ok what fd
      in
      (* a healthy pooled check is ok — and byte-identical to an in-process
         one-shot check (modulo schedule-dependent fields) *)
      let healthy = roundtrip "healthy" (check_req ~id:1 "bcopy" Dml_programs.Sources.bcopy) in
      Alcotest.(check bool) "healthy ok" true (J.member "ok" healthy = Some (J.Bool true));
      let oneshot =
        let session = Session.create ~options:cached_options () in
        match Pipeline.check_s session Dml_programs.Sources.bcopy with
        | Ok rp -> Report_json.of_report ~program:"bcopy" rp
        | Error f -> Alcotest.fail (Pipeline.failure_to_string f)
      in
      Alcotest.(check string) "pooled result byte-identical to one-shot"
        (J.to_string (scrub oneshot))
        (J.to_string (scrub (result_of "healthy" healthy)));
      (* a crash mid-request degrades to a structured worker-lost error
         (the retry worker crashes too — the hook is deterministic) *)
      expect_error_code "crashed worker" "worker-lost"
        (roundtrip "crash" (check_req ~id:2 crash_name src_ok));
      (* the parent survived: the memo still answers instantly *)
      let warm = roundtrip "memo" (check_req ~id:3 "bcopy" Dml_programs.Sources.bcopy) in
      Alcotest.(check bool) "memo hit after the crash" true
        (J.member "memo" warm = Some (J.Bool true));
      Alcotest.(check string) "memo document unchanged by the crash"
        (J.to_string (result_of "healthy" healthy))
        (J.to_string (result_of "warm" warm));
      (* a hung worker runs into the deadline twice and degrades to a
         structured timeout *)
      let t0 = Unix.gettimeofday () in
      expect_error_code "hung worker" "timeout"
        (roundtrip "hang" (check_req ~id:4 hang_name src_ok));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "timeout bounded by two deadlines plus backoff (%.2fs)" elapsed)
        true
        (elapsed >= 0.3 && elapsed < 5.0);
      (* still alive: a fresh program checks fine on a respawned worker *)
      let after =
        roundtrip "after" (check_req ~id:5 "bsearch" Dml_programs.Sources.bsearch)
      in
      Alcotest.(check bool) "fresh check after hang" true
        (J.member "ok" after = Some (J.Bool true));
      (* the status document's pool object accounts for the carnage *)
      let status = roundtrip "status" (obj [ ("op", str "status") ]) in
      let pool =
        match Option.bind (J.member "result" status) (J.member "pool") with
        | Some p -> p
        | None -> Alcotest.fail "pooled status has no pool object"
      in
      let fault name =
        match Option.bind (J.member "faults" pool) (J.member name) with
        | Some (J.Int n) -> n
        | _ -> Alcotest.failf "pool.faults.%s missing" name
      in
      Alcotest.(check bool) "retries counted" true (fault "retries" >= 2);
      Alcotest.(check bool) "respawns counted" true (fault "workers_respawned" >= 3);
      Alcotest.(check bool) "timeout counted" true (fault "timeouts" >= 1);
      Alcotest.(check bool) "loss counted" true (fault "worker_lost" >= 1);
      shutdown_and_reap fd pid)

(* Admission control: with one worker wedged and a zero-length queue, the
   next request is shed immediately with "overloaded" — and the same
   request succeeds once the wedged one has resolved. *)
let test_pool_shedding () =
  with_fault_env (fun () ->
      let path = Filename.concat (Filename.get_temp_dir_name ()) "dml_test_shed.sock" in
      let pid = fork_pooled_server ~max_queue:0 ~path () in
      let c1 = connect path in
      let c2 = connect path in
      Protocol.send c1 (check_req ~id:1 hang_name src_ok);
      Unix.sleepf 0.1;
      (* the only worker is hanging on c1's request *)
      Protocol.send c2 (check_req ~id:2 "ok.dml" src_ok);
      expect_error_code "shed while wedged" "overloaded" (recv_ok "shed" c2);
      expect_error_code "the wedged request times out" "timeout" (recv_ok "hang" c1);
      Protocol.send c2 (check_req ~id:3 "ok.dml" src_ok);
      let r = recv_ok "after shed" c2 in
      Alcotest.(check bool) "accepted after the pool drained" true
        (J.member "ok" r = Some (J.Bool true));
      (try Unix.close c1 with Unix.Unix_error _ -> ());
      shutdown_and_reap c2 pid)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "option overrides" `Quick test_overrides;
        ] );
      ("golden", [ Alcotest.test_case "transcript" `Quick test_golden_transcript ]);
      ("frames", [ Alcotest.test_case "stdio loop" `Quick test_stdio_frames ]);
      ("warm", [ Alcotest.test_case "memo oracle" `Quick test_warm_oracle ]);
      ("socket", [ Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients ]);
      ( "patch",
        [
          Alcotest.test_case "base, patch, revert" `Quick test_patch_roundtrip;
          Alcotest.test_case "strict rejections" `Quick test_patch_rejections;
          Alcotest.test_case "coalescing race" `Quick test_patch_coalescing;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash, hang, recovery" `Quick test_pool_faults;
          Alcotest.test_case "load shedding" `Quick test_pool_shedding;
        ] );
    ]
