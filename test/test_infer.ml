(* The liquid-qualifier annotation-inference engine: every unannotated twin
   must check like its annotated original (or carry a documented residual),
   and inference must never prove a site that is genuinely unsafe. *)

open Dml_core
module Engine = Dml_infer.Engine
module Sources_unannotated = Dml_programs.Sources_unannotated
module Programs = Dml_programs.Programs

let session ?(options = Session.default_options) () = Session.create ~options ()

let infer ?vocab_keep src =
  match Engine.check_s ?vocab_keep (session ()) src with
  | Ok oc -> oc
  | Error f -> Alcotest.failf "inference failed: %s" (Pipeline.failure_to_string f)

let render_unproven r =
  String.concat "; "
    (List.map
       (fun (co : Pipeline.checked_obligation) ->
         Format.asprintf "%s (%a)" co.Pipeline.co_obligation.Elab.ob_what Dml_lang.Loc.pp
           co.Pipeline.co_obligation.Elab.ob_loc)
       (Pipeline.unproven r))

(* --- smoke: the README quickstart program --------------------------------- *)

let dotprod_unannot =
  {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
in
  loop(0, length v1, 0)
end

val a = array(10, 1)
val b = array(10, 2)
val d = dotprod(a, b)
|}

let test_dotprod_smoke () =
  let oc = infer dotprod_unannot in
  let r = oc.Engine.oc_report in
  Alcotest.(check int) "no hand-written annotations" 0 r.Pipeline.rp_annotations;
  Alcotest.(check bool) "no abandon" true (oc.Engine.oc_abandoned = None);
  Alcotest.(check bool) "some liquid vars" true (oc.Engine.oc_stats.Engine.st_liquid_vars > 0);
  if not r.Pipeline.rp_valid then
    Alcotest.failf "residual %d of %d: %s" r.Pipeline.rp_residual r.Pipeline.rp_constraints
      (render_unproven r)

(* --- the inferred-vs-annotated oracle -------------------------------------- *)

(* Residual sites no annotation-free program can avoid — each twin below is
   allowed exactly these, and nothing else:
   - "matrix mult" (2): the driver builds rows with [array(8, array(8, 1))],
     and the elaborator instantiates the element type variable covariantly,
     which erases the inner length index (the [3 :: nil : int list] rule) —
     so row regularity cannot reach the call.  The *annotated* matmult fails
     on the same driver too (one residual at its call site): parity holds on
     equal inputs; the gap is the driver's type, not the inference.
   - "kmp" (1): the library typedef [intPrefix] erases to [int] at the ML
     level, so the synthesized template for [computePrefix] cannot restate
     the element refinement; the one residual site is a [subPrefixCK] call
     that performs its own runtime check by design. *)
let known_residual = [ ("matrix mult", 2); ("kmp", 1) ]

let test_oracle () =
  List.iter
    (fun (b : Programs.benchmark) ->
      let name = b.Programs.name in
      match Sources_unannotated.find name with
      | None -> Alcotest.failf "%s: no unannotated twin" name
      | Some t ->
          (* baseline: the annotated original proves every site *)
          let annotated =
            match Pipeline.check_s (session ()) b.Programs.source with
            | Error f -> Alcotest.failf "%s annotated: %s" name (Pipeline.failure_to_string f)
            | Ok r ->
                if not r.Pipeline.rp_valid then
                  Alcotest.failf "%s annotated left residual sites: %s" name (render_unproven r);
                r
          in
          let oc =
            match Engine.check_s (session ()) t.Sources_unannotated.u_source with
            | Error f -> Alcotest.failf "%s twin: %s" name (Pipeline.failure_to_string f)
            | Ok oc -> oc
          in
          (match oc.Engine.oc_abandoned with
          | Some why -> Alcotest.failf "%s: inference abandoned (%s)" name why
          | None -> ());
          let r = oc.Engine.oc_report in
          (* the twins really are stripped: no annotations at all, except
             kmp's retained library [type]/[assert] signatures, which must
             still be fewer than the original's *)
          if String.equal name "kmp" then
            Alcotest.(check bool)
              (name ^ " twin strictly less annotated") true
              (r.Pipeline.rp_annotations < annotated.Pipeline.rp_annotations)
          else Alcotest.(check int) (name ^ " twin is annotation-free") 0 r.Pipeline.rp_annotations;
          Alcotest.(check bool) (name ^ " synthesized templates") true
            (oc.Engine.oc_stats.Engine.st_liquid_vars > 0);
          let allowed =
            match List.assoc_opt name known_residual with Some n -> n | None -> 0
          in
          if r.Pipeline.rp_residual > allowed then
            Alcotest.failf "%s: %d residual site(s), %d allowed: %s" name r.Pipeline.rp_residual
              allowed (render_unproven r))
    Programs.all

(* --- soundness under vocabulary subsetting --------------------------------- *)

(* dotprod with an off-by-one driver loop bound: the access at
   [i = length v1] is genuinely unsafe, so no inferred annotation may ever
   prove it — under the full vocabulary or any random subset of it. *)
let dotprod_off_by_one =
  {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
in
  loop(0, length v1 + 1, 0)
end

val a = array(10, 1)
val b = array(10, 2)
val d = dotprod(a, b)
|}

let keep_of_seed seed q = Hashtbl.hash (seed, q) land 1 = 0

let fuzz_vocab_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:24 ~name:"no sub-vocabulary proves the unsafe access"
       QCheck.small_int (fun seed ->
         let oc = infer ~vocab_keep:(keep_of_seed seed) dotprod_off_by_one in
         let r = oc.Engine.oc_report in
         (not r.Pipeline.rp_valid) && r.Pipeline.rp_residual >= 1))

let test_full_vocab_sound () =
  let oc = infer dotprod_off_by_one in
  Alcotest.(check bool) "unsafe access stays residual" false
    oc.Engine.oc_report.Pipeline.rp_valid

(* --- budgets: a starved solver degrades sites, never hangs the fixpoint ---- *)

let test_budget_degrades () =
  let options =
    {
      Session.default_options with
      Session.op_solve = { Session.default_solve_config with Session.sc_fuel = Some 1 };
    }
  in
  match
    Engine.check_s (session ~options ())
      (match Sources_unannotated.find "bubble sort" with
      | Some t -> t.Sources_unannotated.u_source
      | None -> Alcotest.fail "bubble sort twin missing")
  with
  | Error f -> Alcotest.failf "front end failed: %s" (Pipeline.failure_to_string f)
  | Ok oc ->
      (* with one fuel unit per obligation every qualifier test exhausts its
         budget, so the fixpoint must still terminate (kept sets only
         shrink) and the starved sites surface as ordinary residuals *)
      Alcotest.(check bool) "fixpoint terminated" true
        (oc.Engine.oc_stats.Engine.st_iterations >= 1);
      Alcotest.(check bool) "starved sites degrade, not hang" true
        (oc.Engine.oc_report.Pipeline.rp_residual > 0)

(* --- cache keying: --infer lives in a separate memo world ------------------ *)

let test_fingerprint_separation () =
  let base = Session.default_options in
  let infer_opts = { base with Session.op_infer = true } in
  Alcotest.(check bool) "fingerprints differ" false
    (String.equal (Session.fingerprint base) (Session.fingerprint infer_opts));
  Alcotest.(check bool) "memo keys differ on the same source" false
    (String.equal (Session.memo_key base dotprod_unannot)
       (Session.memo_key infer_opts dotprod_unannot))

let () =
  Alcotest.run "infer"
    [
      ("smoke", [ Alcotest.test_case "dotprod unannotated" `Quick test_dotprod_smoke ]);
      ("oracle", [ Alcotest.test_case "inferred vs annotated corpus" `Slow test_oracle ]);
      ( "soundness",
        [
          Alcotest.test_case "full vocabulary" `Quick test_full_vocab_sound;
          fuzz_vocab_soundness;
        ] );
      ("budget", [ Alcotest.test_case "starved solver degrades" `Quick test_budget_degrades ]);
      ("memo", [ Alcotest.test_case "fingerprint separation" `Quick test_fingerprint_separation ]);
    ]
