(* Pipeline-level behaviour: failure stages, metrics, solver selection,
   conservativity over plain ML, and diagnostics rendering. *)

open Dml_core
open Dml_solver
open Dml_eval

let session_of_method method_ =
  Session.create
    ~options:
      {
        Session.default_options with
        Session.op_solve = { Session.default_solve_config with Session.sc_method = method_ };
      }
    ()

let check src = Pipeline.check_s (Session.create ()) src

let stage src =
  match check src with
  | Error f -> Some f.Pipeline.f_stage
  | Ok _ -> None

let test_failure_stages () =
  Alcotest.(check bool) "lex" true (stage "val x = $" = Some `Lex);
  Alcotest.(check bool) "parse" true (stage "val x = " = Some `Parse);
  Alcotest.(check bool) "mltype" true (stage "val x = 1 + true" = Some `Mltype);
  Alcotest.(check bool) "elab" true
    (stage "fun f(x) = x where f <| int(zz) -> int" = Some `Elab);
  Alcotest.(check bool) "well-typed" true (stage "val x = 1 + 1" = None)

let test_metrics () =
  match check Dml_programs.Sources.bsearch with
  | Error f -> Alcotest.failf "bsearch: %s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "constraints counted" true (r.Pipeline.rp_constraints >= 5);
      Alcotest.(check bool) "annotations counted" true (r.Pipeline.rp_annotations >= 3);
      Alcotest.(check bool) "annotation lines counted" true
        (r.Pipeline.rp_annotation_lines >= r.Pipeline.rp_annotations - 1);
      Alcotest.(check bool) "code lines counted" true (r.Pipeline.rp_code_lines >= 20);
      Alcotest.(check bool) "times non-negative" true
        (r.Pipeline.rp_gen_time >= 0. && r.Pipeline.rp_solve_time >= 0.)

let test_solver_selection () =
  (* bcopy is provable only with the integral tightening rule *)
  let valid method_ =
    match Pipeline.check_s (session_of_method method_) Dml_programs.Sources.bcopy with
    | Ok r -> r.Pipeline.rp_valid
    | Error f -> Alcotest.failf "bcopy: %s" (Pipeline.failure_to_string f)
  in
  Alcotest.(check bool) "tightened proves bcopy" true (valid Solver.Fm_tightened);
  Alcotest.(check bool) "plain FM does not" false (valid Solver.Fm_plain);
  Alcotest.(check bool) "simplex does not" false (valid Solver.Simplex_rational);
  (* binary search is provable by all three (its goals are rational) *)
  let bsearch_valid method_ =
    match Pipeline.check_s (session_of_method method_) Dml_programs.Sources.bsearch with
    | Ok r -> r.Pipeline.rp_valid
    | Error _ -> false
  in
  Alcotest.(check bool) "bsearch fm" true (bsearch_valid Solver.Fm_tightened);
  Alcotest.(check bool) "bsearch simplex" true (bsearch_valid Solver.Simplex_rational)

(* Conservativity: a program whose annotations are stripped evaluates to the
   same results (Section 1: programs "will elaborate and evaluate exactly as
   in ML"). *)
let test_conservativity () =
  let annotated =
    {|
fun sumto(n) = let
  fun loop(i, acc) = if i > n then acc else loop(i+1, acc + i)
  where loop <| int * int -> int
in loop(0, 0) end
where sumto <| int -> int
val r = sumto(100)
|}
  in
  let plain =
    {|
fun sumto(n) = let
  fun loop(i, acc) = if i > n then acc else loop(i+1, acc + i)
in loop(0, 0) end
val r = sumto(100)
|}
  in
  let eval src =
    match Pipeline.check_valid_s (Session.create ()) src with
    | Error msg -> Alcotest.fail msg
    | Ok r ->
        let ce = Compile.initial_fast Prims.Checked () in
        let ce = Compile.run_program ce r.Pipeline.rp_tprog in
        Compile.lookup ce "r"
  in
  Alcotest.(check bool) "same result" true (Value.equal (eval annotated) (eval plain));
  Alcotest.(check bool) "5050" true (Value.equal (eval plain) (Value.Vint 5050))

let test_diagnose_excerpt () =
  let src = {|
val a = array(3, 0)
val x = sub(a, 5)
|} in
  match check src with
  | Error f -> Alcotest.failf "unexpected failure: %s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "invalid" false r.Pipeline.rp_valid;
      let rendered = Diagnose.render_report ~src r in
      let contains needle =
        let rec go i =
          i + String.length needle <= String.length rendered
          && (String.sub rendered i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "shows the source line" true (contains "sub(a, 5)");
      Alcotest.(check bool) "has a caret line" true (contains "^^^");
      Alcotest.(check bool) "names the check" true (contains "bound check for sub");
      Alcotest.(check bool) "offers a hint" true (contains "hint:")

let test_diagnose_static_failure () =
  let src = "val x = mystery" in
  match check src with
  | Ok _ -> Alcotest.fail "expected a failure"
  | Error f ->
      let rendered = Diagnose.render_failure ~src f in
      Alcotest.(check bool) "mentions the variable" true
        (String.length rendered > 0
        &&
        let rec go i =
          i + 7 <= String.length rendered
          && (String.sub rendered i 7 = "mystery" || go (i + 1))
        in
        go 0)

let test_user_program_isolation () =
  (* the user-only typed AST excludes the basis *)
  match check "val x = 1" with
  | Error f -> Alcotest.failf "%s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check int) "one user top" 1 (List.length r.Pipeline.rp_user_tprog);
      Alcotest.(check bool) "basis included in full program" true
        (List.length r.Pipeline.rp_tprog > 1)

let test_shadowing_and_scopes () =
  (* index variable shadowing across nested annotations resolves innermost *)
  match
    Pipeline.check_valid_s (Session.create ())
      {|
fun outer(a) = let
  fun inner(b) = let
    fun deepest(i) = if 0 <= i andalso i < length b then sub(b, i) else 0
    where deepest <| int -> int
  in deepest(0) end
  where inner <| {n:nat} int array(n) -> int
in inner(a) end
where outer <| {n:nat} int array(n) -> int
|}
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_higher_order_dependent_argument () =
  (* passing the dependent primitive itself as a function argument *)
  match
    Pipeline.check_valid_s (Session.create ())
      {|
fun apply2 f (a, i) = f(a, i)
where apply2 <| ('a array * int -> 'a) -> 'a array * int -> 'a
val r = apply2 subCK (array(3, 7), 1)
|}
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_mutual_recursion_with_where () =
  match
    Pipeline.check_valid_s (Session.create ())
      {|
fun evenlen(nil) = true
  | evenlen(_ :: xs) = oddlen(xs)
and oddlen(nil) = false
  | oddlen(_ :: xs) = evenlen(xs)
where oddlen <| {n:nat} 'a list(n) -> bool
|}
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "pipeline"
    [
      ( "stages",
        [
          Alcotest.test_case "failure stages" `Quick test_failure_stages;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "solver selection" `Quick test_solver_selection;
          Alcotest.test_case "user program isolation" `Quick test_user_program_isolation;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "conservativity" `Quick test_conservativity;
          Alcotest.test_case "scoped annotations" `Quick test_shadowing_and_scopes;
          Alcotest.test_case "higher-order dependent argument" `Quick
            test_higher_order_dependent_argument;
          Alcotest.test_case "mutual recursion with where" `Quick
            test_mutual_recursion_with_where;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "excerpt rendering" `Quick test_diagnose_excerpt;
          Alcotest.test_case "static failure rendering" `Quick test_diagnose_static_failure;
        ] );
    ]
