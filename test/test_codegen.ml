(* The native compile-to-OCaml backend, from two sides:

   - source level: the generated program is grepped for the lowering the
     paper promises — proven access sites become [Array.unsafe_get]/
     [Array.unsafe_set], an injected unproven site keeps its out-of-line
     check, and the always-checked [..CK] sites of kmp stay checked;
   - binary level: every benchmark is compiled and run checked and
     unchecked, and both binaries must report byte-identical summary lines
     equal to the host [Compile] backend's — the differential oracle.

   The binary-level tests skip (with a notice) when no OCaml compiler is
   installed, mirroring the backend's graceful "unavailable" verdict. *)

open Dml_core
open Dml_eval

let typecheck (b : Dml_programs.Programs.benchmark) =
  match Pipeline.check_valid_s (Session.create ()) b.Dml_programs.Programs.source with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: %s" b.Dml_programs.Programs.name msg

let program_body ~mode ?degraded (b : Dml_programs.Programs.benchmark) =
  let report = typecheck b in
  Codegen.program_section
    (Codegen.emit_program ~mode ?degraded ~instrument:false report.Pipeline.rp_tprog)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let bench name = Option.get (Dml_programs.Programs.find name)

(* --- source-level lowering ------------------------------------------------ *)

(* the acceptance grep: a fully proven program compiled unchecked carries
   its array accesses inline and unsafe, and no checked access helper *)
let test_unsafe_emission () =
  List.iter
    (fun name ->
      let body = program_body ~mode:Prims.Unchecked (bench name) in
      Alcotest.(check bool) (name ^ ": unchecked emits Array.unsafe_get") true
        (contains body "Array.unsafe_get");
      Alcotest.(check bool) (name ^ ": no checked reads survive") false
        (contains body "p_sub_c"))
    [ "bcopy"; "binary search"; "bubble sort"; "matrix mult"; "quick sort" ];
  let body = program_body ~mode:Prims.Unchecked (bench "bcopy") in
  Alcotest.(check bool) "bcopy: unchecked emits Array.unsafe_set" true
    (contains body "Array.unsafe_set")

let test_checked_emission () =
  let body = program_body ~mode:Prims.Checked (bench "bcopy") in
  Alcotest.(check bool) "checked build has no unsafe access" false
    (contains body "Array.unsafe_");
  Alcotest.(check bool) "checked build uses the checked helpers" true
    (contains body "p_sub_c")

(* kmp's subCK sites (Figure 5) are residual by design: they stay checked
   even in the unchecked build *)
let test_kmp_residual_sites () =
  let body = program_body ~mode:Prims.Unchecked (bench "kmp") in
  Alcotest.(check bool) "kmp keeps checked sites" true (contains body "p_sub_c");
  Alcotest.(check bool) "kmp still eliminates proven sites" true
    (contains body "Array.unsafe_get")

(* an access the solver cannot prove: [sub(a, length(a))] is off by one *)
let oob_source =
  {|
fun oob(a) = sub(a, length(a))
where oob <| {n:nat} int array(n) -> int
|}

let oob_report () =
  match Pipeline.check_s (Session.create ()) oob_source with
  | Error f -> Alcotest.failf "oob: %s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "oob does not typecheck" false r.Pipeline.rp_valid;
      r

(* the degradation path: the unproven site compiles to a checked access
   even in unchecked mode, while the same site without the degradation
   predicate would have been (unsoundly) unsafe *)
let test_degraded_site_keeps_check () =
  let report = oob_report () in
  let degraded = Pipeline.degraded_pred report in
  let section ?degraded () =
    Codegen.program_section
      (Codegen.emit_program ~mode:Prims.Unchecked ?degraded ~instrument:false
         report.Pipeline.rp_tprog)
  in
  Alcotest.(check bool) "degraded site stays checked" true
    (contains (section ~degraded ()) "p_sub_c");
  Alcotest.(check bool) "without degradation the site would be unsafe" true
    (contains (section ()) "Array.unsafe_get")

(* --- binary-level differential tests ------------------------------------- *)

let toolchain = lazy (Codegen.find_toolchain ())

let require_toolchain () =
  match Lazy.force toolchain with
  | Ok tc -> tc
  | Error msg ->
      Printf.printf "skipping native run: %s\n%!" msg;
      Alcotest.skip ()

let host_summary mode ?degraded tprog (b : Dml_programs.Programs.benchmark) =
  let ce = Compile.initial_fast mode ?degraded () in
  let ce = Compile.run_program ce tprog in
  b.Dml_programs.Programs.run { Dml_programs.Workloads.lookup = Compile.lookup ce } ~scale:1

let native_summary ~mode ?degraded (b : Dml_programs.Programs.benchmark) tprog =
  let name = b.Dml_programs.Programs.name in
  let driver =
    match Dml_programs.Native_drivers.find name with
    | Some d -> d
    | None -> Alcotest.failf "%s: no native driver" name
  in
  match Codegen.build_and_run ~name ~mode ?degraded ~instrument:true ~driver ~scale:1 tprog with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: native build failed: %s" name msg

(* the oracle: for every benchmark, the native binary's summary line equals
   the host Compile backend's, under both disciplines *)
let test_differential (b : Dml_programs.Programs.benchmark) () =
  ignore (require_toolchain ());
  let name = b.Dml_programs.Programs.name in
  let report = typecheck b in
  let tprog = report.Pipeline.rp_tprog in
  let degraded = Pipeline.degraded_pred report in
  let host = host_summary Prims.Checked tprog b in
  let checked = native_summary ~mode:Prims.Checked b tprog in
  Alcotest.(check string) (name ^ ": checked native = host") host checked.Codegen.nr_summary;
  let unchecked = native_summary ~mode:Prims.Unchecked ~degraded b tprog in
  Alcotest.(check string) (name ^ ": unchecked native = host") host
    unchecked.Codegen.nr_summary;
  (* the instrumented unchecked binary reports its residual checks: zero
     everywhere except kmp's CK sites *)
  match unchecked.Codegen.nr_dynamic with
  | None -> Alcotest.fail (name ^ ": instrumented run reported no counters")
  | Some dyn ->
      if name = "kmp" then
        Alcotest.(check bool) "kmp residual checks execute" true (dyn > 0)
      else Alcotest.(check int) (name ^ ": no dynamic checks") 0 dyn

let differential_tests =
  List.map
    (fun (b : Dml_programs.Programs.benchmark) ->
      Alcotest.test_case b.Dml_programs.Programs.name `Slow (test_differential b))
    Dml_programs.Programs.all

(* the regression the paper's soundness story depends on: a degraded build
   of an out-of-bounds program traps instead of reading out of bounds *)
let test_oob_traps () =
  ignore (require_toolchain ());
  let report = oob_report () in
  let degraded = Pipeline.degraded_pred report in
  let driver =
    {|
let dml_run _dml_scale =
  let a = Array.make 4 1 in
  try string_of_int (v_oob a) with E_Subscript -> "trapped"
|}
  in
  match
    Codegen.build_and_run ~name:"oob" ~mode:Prims.Unchecked ~degraded ~instrument:true
      ~driver ~scale:1 report.Pipeline.rp_tprog
  with
  | Error msg -> Alcotest.failf "oob: native build failed: %s" msg
  | Ok r ->
      Alcotest.(check string) "the degraded binary traps" "trapped" r.Codegen.nr_summary;
      Alcotest.(check bool) "the trap was a counted dynamic check" true
        (match r.Codegen.nr_dynamic with Some d -> d > 0 | None -> false)

(* --- mangling and registry ------------------------------------------------ *)

(* the driver snippets hardcode these names; a mangling change must fail
   loudly here rather than as 12 opaque compile errors *)
let test_mangling () =
  Alcotest.(check string) "plain var" "v_bsearchInt" (Codegen.mangle_var "bsearchInt");
  Alcotest.(check string) "prime survives" "v_loop'" (Codegen.mangle_var "loop'");
  Alcotest.(check string) "cons constructor" "C_3a3a" (Codegen.mangle_con "::");
  Alcotest.(check string) "exception" "E_Subscript" (Codegen.mangle_exn "Subscript");
  Alcotest.(check string) "type constructor" "t_option" (Codegen.mangle_type "option")

let test_registry () =
  let key name = Option.map (fun b -> b.Backend.b_key) (Backend.find name) in
  Alcotest.(check (option string)) "cost-model by key" (Some "cost-model")
    (key "cost-model");
  Alcotest.(check (option string)) "cost-model by alias" (Some "cost-model")
    (key "cycles");
  Alcotest.(check (option string)) "compiled by key" (Some "compiled") (key "compiled");
  Alcotest.(check (option string)) "compiled by alias" (Some "compiled") (key "closure");
  Alcotest.(check (option string)) "native" (Some "native") (key "native");
  Alcotest.(check (option string)) "unknown" None (key "no-such-backend");
  Alcotest.(check (list string)) "registration order"
    [ "cost-model"; "compiled"; "native" ]
    (List.map (fun b -> b.Backend.b_key) (Backend.all ()))

let () =
  Alcotest.run "codegen"
    [
      ( "lowering",
        [
          Alcotest.test_case "proven sites are unsafe" `Quick test_unsafe_emission;
          Alcotest.test_case "checked build stays checked" `Quick test_checked_emission;
          Alcotest.test_case "kmp residual sites" `Quick test_kmp_residual_sites;
          Alcotest.test_case "degraded site keeps its check" `Quick
            test_degraded_site_keeps_check;
        ] );
      ("differential (native vs host)", differential_tests);
      ("soundness", [ Alcotest.test_case "oob program traps" `Slow test_oob_traps ]);
      ( "api",
        [
          Alcotest.test_case "mangling is stable" `Quick test_mangling;
          Alcotest.test_case "backend registry" `Quick test_registry;
        ] );
    ]
