open Dml_core

let check_ok name src =
  match Pipeline.check_valid_s (Session.create ()) src with
  | Ok report -> report
  | Error msg -> Alcotest.failf "%s: %s" name msg

let check_fails name src =
  match Pipeline.check_s (Session.create ()) src with
  | Error f -> Alcotest.failf "%s: failed before solving: %s" name (Pipeline.failure_to_string f)
  | Ok report ->
      if report.Pipeline.rp_valid then Alcotest.failf "%s: expected unproven constraints" name

let check_static_error name src =
  match Pipeline.check_s (Session.create ()) src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a static error" name

(* --- Figure 1: dot product ------------------------------------------------ *)

let dotprod_src =
  {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
|}

let test_dotprod () =
  let r = check_ok "dotprod" dotprod_src in
  Alcotest.(check bool) "has constraints" true (r.Pipeline.rp_constraints > 0)

(* the same program with the loop guard changed from i = n to i <= n would
   allow i to reach n and overrun: sub(v1, n) must fail *)
let test_dotprod_bad_guard () =
  check_fails "dotprod bad guard"
    {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i > n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
|}

(* swapping p and q must fail: v2 may be shorter *)
let test_dotprod_swapped () =
  check_fails "dotprod swapped arrays"
    {|
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v2, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
|}

(* --- Figure 2: reverse ------------------------------------------------------- *)

let reverse_src =
  {|
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
|}

let test_reverse () = ignore (check_ok "reverse" reverse_src)

(* reverse with a wrong invariant: claiming the result has length m must fail *)
let test_reverse_wrong_length () =
  check_fails "reverse wrong length"
    {|
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
|}

(* --- filter: existential result ----------------------------------------------- *)

let filter_src =
  {|
fun filter p nil = nil
  | filter p (x::xs) = if p(x) then x :: (filter p xs) else filter p xs
where filter <| {m:nat} ('a -> bool) -> 'a list(m) -> [n:nat | n <= m] 'a list(n)
|}

let test_filter () = ignore (check_ok "filter" filter_src)

(* claiming filter preserves length exactly must fail *)
let test_filter_exact () =
  check_fails "filter exact length"
    {|
fun filter p nil = nil
  | filter p (x::xs) = if p(x) then x :: (filter p xs) else filter p xs
where filter <| {m:nat} ('a -> bool) -> 'a list(m) -> 'a list(m)
|}

(* --- Figure 3: binary search ----------------------------------------------------- *)

let bsearch_src =
  {|
fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let
        val m = lo + (hi - lo) div 2
        val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => SOME(m, x)
        | GREATER => look(m+1, hi)
      end
    else NONE
  where look <| {l:nat | 0 <= l <= size} {h:int | 0 <= h+1 <= size}
               int(l) * int(h) -> (int * 'a) option
in
  look(0, length arr - 1)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> (int * 'a) option
|}

let test_bsearch () = ignore (check_ok "bsearch" bsearch_src)

(* off-by-one: starting at length arr (not length arr - 1) must fail *)
let test_bsearch_off_by_one () =
  check_fails "bsearch off by one"
    {|
fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let
        val m = lo + (hi - lo) div 2
        val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => SOME(m, x)
        | GREATER => look(m+1, hi)
      end
    else NONE
  where look <| {l:nat | 0 <= l <= size} {h:int | 0 <= h+1 <= size}
               int(l) * int(h) -> (int * 'a) option
in
  look(0, length arr)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> (int * 'a) option
|}

(* --- smaller checks ------------------------------------------------------------------ *)

let test_literal_bounds () =
  ignore
    (check_ok "constant index"
       {|
val a = array(3, 0)
val x = sub(a, 2)
|});
  check_fails "constant overrun" {|
val a = array(3, 0)
val x = sub(a, 3)
|};
  check_fails "negative index" {|
val a = array(3, 0)
val x = sub(a, ~1)
|}

let test_update () =
  ignore
    (check_ok "update in loop"
       {|
fun fill(a) = let
  fun loop(i, m) =
    if i < m then (update(a, i, i); loop(i+1, m)) else ()
  where loop <| {i:nat} int(i) * int(n) -> unit
in
  loop(0, length a)
end
where fill <| {n:nat} int array(n) -> unit
|});
  check_fails "update past end"
    {|
fun fill(a) = let
  fun loop(i, m) =
    if i <= m then (update(a, i, i); loop(i+1, m)) else ()
  where loop <| {i:nat} int(i) * int(n) -> unit
in
  loop(0, length a)
end
where fill <| {n:nat} int array(n) -> unit
|}

let test_checked_variants_always_ok () =
  (* subCK needs no proof even with unknowable indices *)
  ignore
    (check_ok "subCK"
       {|
fun get(a, i) = subCK(a, i)
where get <| int array * int -> int
|})

let test_unannotated_passthrough () =
  (* plain ML code with no annotations elaborates with no constraints *)
  let r =
    check_ok "plain ML" {|
fun double(x) = x + x
val y = double(21)
|}
  in
  ignore r

let test_list_ops () =
  ignore
    (check_ok "hd/tl safe"
       {|
fun second(l) = hd(tl(l))
where second <| {n:nat | n >= 2} 'a list(n) -> 'a
|});
  check_fails "hd of possibly-empty tl" {|
fun second(l) = hd(tl(l))
where second <| {n:nat | n >= 1} 'a list(n) -> 'a
|};
  ignore
    (check_ok "nth in range"
       {|
fun third(l) = nth(l, 2)
where third <| {n:nat | n > 2} 'a list(n) -> 'a
|})

let test_append () =
  ignore
    (check_ok "append"
       {|
fun append(nil, ys) = ys
  | append(x::xs, ys) = x :: append(xs, ys)
where append <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
|})

let test_zip () =
  ignore
    (check_ok "zip of equal lengths"
       {|
fun zip(nil, nil) = nil
  | zip(x::xs, y::ys) = (x, y) :: zip(xs, ys)
where zip <| {n:nat} 'a list(n) * 'b list(n) -> ('a * 'b) list(n)
|})

let test_static_errors () =
  check_static_error "nonexistent index var" {|
fun f(x) = x
where f <| int(z) -> int(z)
|};
  check_static_error "bool index on int" {|
fun f(x) = x
where f <| {b:bool} int(b) -> int(b)
|};
  check_static_error "wrong index count"
    {|
fun f(x) = x
where f <| {m:int} {n:int} int(m, n) -> int
|}

let test_existential_elimination_path () =
  (* a Sigma-typed intermediary flows into an indexed position: the witness
     must be recovered (the Section 3.1 machinery) *)
  ignore
    (check_ok "sigma to pi"
       {|
fun clamp(n) = if n < 0 then 0 else n
where clamp <| int -> [r:nat] int(r)

fun safe_get(a, i) =
  let val j = clamp(i) in
    if j < length a then sub(a, j) else sub(a, 0)
  end
where safe_get <| {n:nat | n > 0} int array(n) * int -> int
|})

let test_andalso_guard () =
  ignore
    (check_ok "andalso guards the second operand"
       {|
fun get(a, i) =
  if 0 <= i andalso i < length a then sub(a, i) else 0
where get <| int array * int -> int
|});
  check_fails "or does not guard"
    {|
fun get(a, i) =
  if 0 <= i orelse i < length a then sub(a, i) else 0
where get <| int array * int -> int
|}

let test_bool_singleton_through_case () =
  (* the scrutinee's boolean index becomes a hypothesis through the
     true/false patterns, not just through if *)
  ignore
    (check_ok "case on a comparison"
       {|
fun get(a, i) =
  case 0 <= i andalso i < length a of
    true => sub(a, i)
  | false => 0
where get <| int array * int -> int
|});
  check_fails "case with swapped arms"
    {|
fun get(a, i) =
  case 0 <= i andalso i < length a of
    false => sub(a, i)
  | true => 0
where get <| int array * int -> int
|}

let test_indexed_element_type_preserved () =
  (* the instantiation 'a := int array(c) keeps its index through sub, so
     the result can be a singleton of the inner dimension *)
  ignore
    (check_ok "row length is c"
       {|
fun rowlen(m) = length (sub(m, 0))
where rowlen <| {r:nat | r > 0} {c:nat} int array(c) array(r) -> int(c)
|});
  check_fails "wrong singleton result"
    {|
fun rowlen(m) = length (sub(m, 0))
where rowlen <| {r:nat | r > 0} {c:nat} int array(c) array(r) -> int(c+1)
|}

let test_sigma_pair_binding () =
  ignore
    (check_ok "existential pair"
       {|
fun halves(n) = (n div 2, n - n div 2)
where halves <| {n:nat} int(n) -> [p:nat, q:nat | p + q = n] (int(p) * int(q))
|});
  check_fails "wrong pair invariant"
    {|
fun halves(n) = (n div 2, n div 2)
where halves <| {n:nat} int(n) -> [p:nat, q:nat | p + q = n] (int(p) * int(q))
|}

let () =
  Alcotest.run "elab"
    [
      ( "paper figures",
        [
          Alcotest.test_case "Figure 1: dotprod" `Quick test_dotprod;
          Alcotest.test_case "dotprod bad guard" `Quick test_dotprod_bad_guard;
          Alcotest.test_case "dotprod swapped" `Quick test_dotprod_swapped;
          Alcotest.test_case "Figure 2: reverse" `Quick test_reverse;
          Alcotest.test_case "reverse wrong invariant" `Quick test_reverse_wrong_length;
          Alcotest.test_case "filter (existential)" `Quick test_filter;
          Alcotest.test_case "filter exact (rejected)" `Quick test_filter_exact;
          Alcotest.test_case "Figure 3: bsearch" `Quick test_bsearch;
          Alcotest.test_case "bsearch off-by-one" `Quick test_bsearch_off_by_one;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "literal bounds" `Quick test_literal_bounds;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "checked variants" `Quick test_checked_variants_always_ok;
          Alcotest.test_case "plain ML passthrough" `Quick test_unannotated_passthrough;
          Alcotest.test_case "list operations" `Quick test_list_ops;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "zip" `Quick test_zip;
          Alcotest.test_case "existential elimination" `Quick test_existential_elimination_path;
          Alcotest.test_case "andalso guard" `Quick test_andalso_guard;
          Alcotest.test_case "bool singleton through case" `Quick
            test_bool_singleton_through_case;
          Alcotest.test_case "indexed element types" `Quick test_indexed_element_type_preserved;
          Alcotest.test_case "existential pairs" `Quick test_sigma_pair_binding;
        ] );
      ( "static errors",
        [ Alcotest.test_case "resolution errors" `Quick test_static_errors ] );
    ]
