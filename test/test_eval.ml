open Dml_core
open Dml_eval
open Value

(* Check a program through the full pipeline, then evaluate it on a backend. *)
let typecheck name src =
  match Pipeline.check_valid_s (Session.create ()) src with
  | Ok report -> report.Pipeline.rp_tprog
  | Error msg -> Alcotest.failf "%s: %s" name msg

type backend = {
  b_name : string;
  run : Prims.mode -> ?counters:Prims.counters -> Dml_mltype.Tast.tprogram -> string -> Value.t;
}

let interp_backend =
  {
    b_name = "interp";
    run =
      (fun mode ?counters tprog name ->
        let env = Interp.initial_env (Prims.table mode ?counters ()) in
        let env = Interp.run_program env tprog in
        Interp.lookup env name);
  }

let compiled_backend =
  {
    b_name = "compiled";
    run =
      (fun mode ?counters tprog name ->
        let ce = Compile.initial (Prims.table mode ?counters ()) in
        let ce = Compile.run_program ce tprog in
        Compile.lookup ce name);
  }

let backends = [ interp_backend; compiled_backend ]

let value = Alcotest.testable Value.pp Value.equal

let both name src binding expected =
  let tprog = typecheck name src in
  List.iter
    (fun b ->
      let v = b.run Prims.Checked tprog binding in
      Alcotest.check value (Printf.sprintf "%s (%s, checked)" name b.b_name) expected v;
      let v' = b.run Prims.Unchecked tprog binding in
      Alcotest.check value (Printf.sprintf "%s (%s, unchecked)" name b.b_name) expected v')
    backends

(* --- basic evaluation -------------------------------------------------------- *)

let test_arith () =
  both "arith" {| val x = 1 + 2 * 3 - 4 |} "x" (Vint 3);
  both "division floors" {| val x = (7 div 2, ~7 div 2, 7 mod 3, ~7 mod 3) |} "x"
    (Vtuple [ Vint 3; Vint (-4); Vint 1; Vint 2 ]);
  both "comparison" {| val x = (1 < 2, 2 <= 1, 3 = 3, 3 <> 3) |} "x"
    (Vtuple [ Vbool true; Vbool false; Vbool true; Vbool false ]);
  both "min max abs sgn" {| val x = (min(3, 5), max(3, 5), abs(~7), sgn(~7)) |} "x"
    (Vtuple [ Vint 3; Vint 5; Vint 7; Vint (-1) ])

let test_functions () =
  both "curried" {|
fun add x y = x + y
val x = add 2 3
|} "x" (Vint 5);
  both "higher order"
    {|
fun twice f x = f (f x)
fun inc(n) = n + 1
val x = twice inc 5
|} "x" (Vint 7);
  both "closure capture"
    {|
fun adder(n) = fn m => n + m
val x = adder(10) 32
|} "x" (Vint 42)

let test_recursion () =
  both "factorial"
    {|
fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
val x = fact(10)
|}
    "x" (Vint 3628800);
  both "mutual recursion"
    {|
fun even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
val x = (even 10, odd 10)
|}
    "x"
    (Vtuple [ Vbool true; Vbool false ])

let test_datatypes () =
  both "list sum"
    {|
fun sum(nil) = 0
  | sum(x::xs) = x + sum(xs)
val x = sum(1 :: 2 :: 3 :: nil)
|}
    "x" (Vint 6);
  both "option"
    {|
fun get(NONE) = 0
  | get(SOME x) = x
val x = get(SOME 5) + get(NONE)
|}
    "x" (Vint 5);
  both "nested patterns"
    {|
fun firstTwo(x :: y :: _) = x + y
  | firstTwo(x :: nil) = x
  | firstTwo(nil) = 0
val x = firstTwo(10 :: 20 :: 30 :: nil)
|}
    "x" (Vint 30)

let test_case_and_sequence () =
  both "case" {|
val x = case 1 :: nil of nil => 0 | y :: _ => y
|} "x" (Vint 1);
  both "sequence and unit"
    {|
val a = array(4, 0)
val x = (update(a, 0, 10); update(a, 1, 20); sub(a, 0) + sub(a, 1))
|}
    "x" (Vint 30)

let test_short_circuit () =
  (* the second operand must not be evaluated when the first decides *)
  both "andalso shortcut"
    {|
val a = array(1, 7)
fun safe(i) = 0 <= i andalso i < length a andalso subCK(a, i) > 0
val x = (safe(0), safe(5), safe(~1))
|}
    "x"
    (Vtuple [ Vbool true; Vbool false; Vbool false ])

let test_reverse_runs () =
  both "reverse"
    {|
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
val x = reverse(1 :: 2 :: 3 :: nil)
|}
    "x"
    (Value.of_int_list [ 3; 2; 1 ])

(* --- checked vs unchecked semantics -------------------------------------------- *)

let test_subck_raises () =
  let tprog = typecheck "subck" {|
fun get(a, i) = subCK(a, i)
where get <| int array * int -> int
|} in
  List.iter
    (fun b ->
      let f = b.run Prims.Checked tprog "get" in
      let call v = as_fun f v in
      Alcotest.check value "in bounds" (Vint 0) (call (Vtuple [ of_int_array [| 0; 0 |]; Vint 1 ]));
      Alcotest.check_raises "out of bounds" Prims.Subscript (fun () ->
          ignore (call (Vtuple [ of_int_array [| 0; 0 |]; Vint 2 ])));
      Alcotest.check_raises "negative" Prims.Subscript (fun () ->
          ignore (call (Vtuple [ of_int_array [| 0; 0 |]; Vint (-1) ]))))
    backends

let test_counters () =
  let src =
    {|
fun sumall(v) = let
  fun loop(i, n, acc) =
    if i = n then acc else loop(i+1, n, acc + sub(v, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v, 0)
end
where sumall <| {p:nat} int array(p) -> int
val result = sumall(array(100, 2))
|}
  in
  let tprog = typecheck "counters" src in
  List.iter
    (fun b ->
      (* checked mode: 100 dynamic checks *)
      let c = Prims.new_counters () in
      let v = b.run Prims.Checked ~counters:c tprog "result" in
      Alcotest.check value "sum" (Vint 200) v;
      Alcotest.(check int)
        (b.b_name ^ " checked count")
        100 c.Prims.dynamic_checks;
      Alcotest.(check int) (b.b_name ^ " nothing eliminated") 0 c.Prims.eliminated_checks;
      (* unchecked mode: 100 checks eliminated *)
      let c' = Prims.new_counters () in
      let v' = b.run Prims.Unchecked ~counters:c' tprog "result" in
      Alcotest.check value "sum" (Vint 200) v';
      Alcotest.(check int) (b.b_name ^ " eliminated") 100 c'.Prims.eliminated_checks;
      Alcotest.(check int) (b.b_name ^ " no dynamic checks") 0 c'.Prims.dynamic_checks)
    backends

let test_backends_agree () =
  (* quicksort-ish pivot partitioning: a stateful program exercised on both
     backends must agree *)
  let src =
    {|
fun fill(a) = let
  fun loop(i, m) =
    if i < m then (update(a, i, (i * 37 + 11) mod 100); loop(i+1, m)) else ()
  where loop <| {i:nat} int(i) * int(n) -> unit
in
  loop(0, length a)
end
where fill <| {n:nat} int array(n) -> unit

fun sumall(v) = let
  fun loop(i, m, acc) =
    if i = m then acc else loop(i+1, m, acc + sub(v, i))
  where loop <| {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v, 0)
end
where sumall <| {n:nat} int array(n) -> int

val a = array(50, 0)
val result = (fill(a); sumall(a))
|}
  in
  let tprog = typecheck "agree" src in
  let v1 = interp_backend.run Prims.Checked tprog "result" in
  let v2 = compiled_backend.run Prims.Checked tprog "result" in
  let v3 = compiled_backend.run Prims.Unchecked tprog "result" in
  Alcotest.check value "interp = compiled" v1 v2;
  Alcotest.check value "checked = unchecked" v1 v3

let test_match_failure () =
  let tprog = typecheck "partial" {|
fun head(x :: _) = x
val f = head
|} in
  List.iter
    (fun b ->
      let f = b.run Prims.Checked tprog "f" in
      match as_fun f (Vcon ("nil", None)) with
      | _ -> Alcotest.fail "expected a match failure"
      | exception Interp.Match_failure_dml _ -> ()
      | exception Compile.Match_failure_dml _ -> ())
    backends

let () =
  Alcotest.run "eval"
    [
      ( "pure",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "datatypes" `Quick test_datatypes;
          Alcotest.test_case "case and sequences" `Quick test_case_and_sequence;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "reverse" `Quick test_reverse_runs;
        ] );
      ( "checking",
        [
          Alcotest.test_case "subCK raises" `Quick test_subck_raises;
          Alcotest.test_case "check counters" `Quick test_counters;
          Alcotest.test_case "backends agree" `Quick test_backends_agree;
          Alcotest.test_case "match failure" `Quick test_match_failure;
        ] );
    ]
