(* The observability layer: metrics-registry invariants, trace span
   well-formedness, JSON serialization round-trips (including the golden
   file), the zero-allocation disabled path, and regressions for the four
   fixes that rode along with it: wall-clock table timing, the persistent
   store's write-failure leak, budget-tier stability under the clock, and
   escalation counting on cache hits. *)

open Dml_obs
open Dml_index
open Dml_constr
open Dml_solver

(* --- metrics registry ----------------------------------------------------- *)

let test_counter_monotonic () =
  let c = Metrics.counter "test.mono" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "incr adds" (v0 + 42) (Metrics.value c);
  Metrics.incr ~by:(-5) c;
  Metrics.incr ~by:0 c;
  Alcotest.(check int) "non-positive increments are ignored" (v0 + 42) (Metrics.value c);
  let c' = Metrics.counter "test.mono" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same counter" (v0 + 43) (Metrics.value c)

let test_histogram () =
  let h = Metrics.histogram ~bounds:[| 1.; 10. |] "test.histo" in
  let n0 = Metrics.h_count h and s0 = Metrics.h_sum h in
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  Metrics.observe h 50.;
  Alcotest.(check int) "three observations" (n0 + 3) (Metrics.h_count h);
  Alcotest.(check (float 1e-9)) "sum accumulates" (s0 +. 55.5) (Metrics.h_sum h)

let test_metrics_json () =
  Metrics.incr (Metrics.counter "test.json_counter");
  Metrics.observe (Metrics.histogram "test.json_histo") 2.5;
  let doc = Metrics.to_json () in
  (match Json.member "schema" doc with
  | Some (Json.String s) -> Alcotest.(check string) "schema" "dml-metrics/1" s
  | _ -> Alcotest.fail "metrics dump lacks a schema field");
  (match Json.member "counters" doc with
  | Some (Json.Obj kvs) ->
      Alcotest.(check bool) "registered counter appears" true
        (List.mem_assoc "test.json_counter" kvs)
  | _ -> Alcotest.fail "metrics dump lacks counters");
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "metrics dump round-trips" true (doc = doc')
  | Error msg -> Alcotest.fail ("metrics dump does not re-parse: " ^ msg)

(* Every cache lookup is classified as exactly one of hit or miss, so the
   registry totals must tie out. *)
let test_cache_lookup_invariant () =
  let lookups () = Metrics.value (Metrics.counter "cache.lookups") in
  let hits () = Metrics.value (Metrics.counter "cache.hits") in
  let misses () = Metrics.value (Metrics.counter "cache.misses") in
  let c = Dml_cache.Cache.create () in
  let l0 = lookups () and h0 = hits () and m0 = misses () in
  Alcotest.(check bool) "cold lookup misses" true
    (Dml_cache.Cache.find c ~digest:"g1" ~method_:"fm" ~tier:max_int = None);
  Dml_cache.Cache.add c ~digest:"g1" ~method_:"fm" ~tier:max_int Dml_cache.Cache.Valid;
  Alcotest.(check bool) "warm lookup hits" true
    (Dml_cache.Cache.find c ~digest:"g1" ~method_:"fm" ~tier:max_int
    = Some Dml_cache.Cache.Valid);
  Alcotest.(check int) "two lookups recorded" (l0 + 2) (lookups ());
  Alcotest.(check int) "one hit recorded" (h0 + 1) (hits ());
  Alcotest.(check int) "one miss recorded" (m0 + 1) (misses ());
  Alcotest.(check int) "hits + misses = lookups" (lookups ()) (hits () + misses ())

(* --- trace spans --------------------------------------------------------- *)

let test_span_nesting () =
  let sk = Trace.create_sink () in
  Trace.set_sink (Some sk);
  let a = Trace.start "a" in
  let b = Trace.start "b" in
  Trace.set_str b "k" "v1";
  Trace.set_str b "k" "v2";
  let _c = Trace.start "c" in
  (* b and c are still open: finishing a must close them underneath it so
     the recorded nesting stays well-formed *)
  Trace.finish a;
  Trace.finish a (* double finish is a no-op *);
  let d = Trace.start "d" in
  Trace.finish d;
  Trace.set_sink None;
  match Trace.roots sk with
  | [ ra; rd ] -> (
      Alcotest.(check string) "first root" "a" (Trace.span_name ra);
      Alcotest.(check string) "second root" "d" (Trace.span_name rd);
      Alcotest.(check bool) "durations are nonnegative" true
        (Trace.span_dur ra >= 0. && Trace.span_dur rd >= 0.);
      match Trace.span_children ra with
      | [ rb ] -> (
          Alcotest.(check string) "abandoned child is attached" "b" (Trace.span_name rb);
          (match Trace.span_attr rb "k" with
          | Some (Json.String s) -> Alcotest.(check string) "last attribute write wins" "v2" s
          | _ -> Alcotest.fail "attribute k missing");
          match Trace.span_children rb with
          | [ rc ] -> Alcotest.(check string) "grandchild nests under b" "c" (Trace.span_name rc)
          | cs -> Alcotest.fail (Printf.sprintf "expected [c] under b, got %d" (List.length cs)))
      | cs -> Alcotest.fail (Printf.sprintf "expected [b] under a, got %d" (List.length cs)))
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 roots, got %d" (List.length rs))

let test_span_exception () =
  let sk = Trace.create_sink () in
  Trace.set_sink (Some sk);
  (try Trace.with_span "outer" (fun _ -> Trace.with_span "inner" (fun _ -> raise Exit))
   with Exit -> ());
  Trace.set_sink None;
  match Trace.roots sk with
  | [ o ] -> (
      Alcotest.(check string) "outer survives the exception" "outer" (Trace.span_name o);
      match Trace.span_children o with
      | [ i ] -> Alcotest.(check string) "inner is closed and attached" "inner" (Trace.span_name i)
      | cs -> Alcotest.fail (Printf.sprintf "expected [inner], got %d" (List.length cs)))
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length rs))

let test_trace_json () =
  let sk = Trace.create_sink () in
  Trace.set_sink (Some sk);
  Trace.with_span "check" (fun sp ->
      Trace.set_bool sp "valid" true;
      Trace.with_span "solve" (fun sp' -> Trace.set_str sp' "verdict" "valid"));
  Trace.set_sink None;
  let doc = Trace.to_json sk in
  (match Json.member "schema" doc with
  | Some (Json.String s) -> Alcotest.(check string) "schema" "dml-trace/1" s
  | _ -> Alcotest.fail "trace lacks a schema field");
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "trace round-trips" true (doc = doc')
  | Error msg -> Alcotest.fail ("trace does not re-parse: " ^ msg)

let test_disabled_trace_no_alloc () =
  Trace.set_sink None;
  let sp = Trace.start "warmup" in
  Trace.finish sp;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    let sp = Trace.start "solve" in
    if Trace.real sp then Trace.set_int sp "i" i;
    Trace.finish sp
  done;
  let w1 = Gc.minor_words () in
  (* the two minor_words calls each box a float; everything else must be
     allocation-free on the disabled path *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled tracing allocates nothing (%.0f words)" (w1 -. w0))
    true
    (w1 -. w0 < 256.)

(* --- JSON ----------------------------------------------------------------- *)

let test_json_round_trip () =
  let samples =
    [
      Json.Null;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-12345);
      Json.Int max_int;
      Json.Float 0.0;
      Json.Float 1.5;
      Json.Float (-0.0625);
      Json.Float 1.23456789e-7;
      Json.String "";
      Json.String "plain";
      Json.String "esc \" \\ \n \t \r \x01";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("b", Json.Obj [ ("nested", Json.Bool true) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let compact = Json.to_string v in
      (match Json.of_string compact with
      | Ok v' -> Alcotest.(check bool) ("compact round-trip: " ^ compact) true (v = v')
      | Error msg -> Alcotest.fail (compact ^ " does not re-parse: " ^ msg));
      match Json.of_string (Json.to_string_pretty v) with
      | Ok v' -> Alcotest.(check bool) ("pretty round-trip: " ^ compact) true (v = v')
      | Error msg -> Alcotest.fail ("pretty form does not re-parse: " ^ msg))
    samples

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_golden () =
  (* dune runtest runs in the stanza directory, dune exec in the root *)
  let path =
    if Sys.file_exists "obs_golden.json" then "obs_golden.json" else "test/obs_golden.json"
  in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string raw with
  | Error msg -> Alcotest.fail ("golden file does not parse: " ^ msg)
  | Ok v ->
      Alcotest.(check string) "pretty printer reproduces the golden file" raw
        (Json.to_string_pretty v ^ "\n");
      (match Json.member "schema" v with
      | Some (Json.String s) -> Alcotest.(check string) "schema" "dml-trace/1" s
      | _ -> Alcotest.fail "golden file lacks a schema field");
      Alcotest.(check bool) "compact form also round-trips" true
        (Json.of_string (Json.to_string v) = Ok v)

(* --- regression: Tables.time_pair measures wall time ----------------------- *)

let test_time_pair_wall_clock () =
  (* sleeping burns no CPU: under the old [Sys.time] both sides measured ~0 *)
  let slept, quick =
    Dml_programs.Tables.time_pair (fun () -> Unix.sleepf 0.02) (fun () -> ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "sleep is measured on the wall clock (%.4fs)" slept)
    true (slept >= 0.015);
  Alcotest.(check bool) "the empty side is faster" true (quick < slept)

(* --- regression: persistent-store write failures leak nothing -------------- *)

let test_disk_write_fault () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dml_obs_store_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let st = Dml_cache.Store.create ~dir () in
  let entry = { Dml_cache.Store.e_tier = 3; e_verdict = Dml_cache.Store.Valid } in
  let count_fds () = try Array.length (Sys.readdir "/proc/self/fd") with Sys_error _ -> -1 in
  Dml_cache.Store.write_fault_injection :=
    (fun _ -> raise (Sys_error "injected write failure"));
  let fds_before = count_fds () in
  for i = 1 to 50 do
    Dml_cache.Store.add st (Printf.sprintf "k%d" i) entry
  done;
  let fds_after = count_fds () in
  Dml_cache.Store.write_fault_injection := (fun _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "no file descriptors leaked (%d -> %d)" fds_before fds_after)
    true
    (fds_before = -1 || fds_after <= fds_before);
  Alcotest.(check int) "failed writes leave no temp files behind" 0
    (Array.length (Sys.readdir dir));
  (* the store still persists once writes succeed again *)
  Dml_cache.Store.add st "k_ok" entry;
  (match Dml_cache.Store.disk_file st "k_ok" with
  | None -> Alcotest.fail "expected a persistent layer"
  | Some path -> Alcotest.(check bool) "entry persisted after recovery" true (Sys.file_exists path));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* --- regression: budget tier is stable while the clock advances ------------ *)

let test_tier_stable_under_clock () =
  let b = Budget.create ~timeout_ms:64 () in
  let t1 = Budget.tier b in
  Unix.sleepf 0.05;
  let t2 = Budget.tier b in
  Alcotest.(check int) "tier is derived from the configured deadline, not the remaining one"
    t1 t2;
  Alcotest.(check bool) "deadline-limited budgets land in a finite tier" true (t1 < max_int);
  Alcotest.(check int) "unlimited budgets keep the top tier" max_int
    (Budget.tier (Budget.unlimited ()))

(* --- regression: cache hits are not escalations ----------------------------- *)

(* Provable only with integral tightening: the negation 1 <= 2x <= 1 has the
   rational solution x = 1/2 but no integer one, so plain Fourier-Motzkin
   fails the goal and the ladder must escalate; with tightening 2x >= 1
   becomes x >= 1, a contradiction. *)
let tighten_goal () =
  let x = Ivar.fresh "x" in
  let open Idx in
  {
    Constr.goal_vars = [ (x, Sint) ];
    goal_hyps = [ Bcmp (Rle, Imul (Iconst 2, Ivar x), Iconst 1) ];
    goal_concl = Bcmp (Rle, Imul (Iconst 2, Ivar x), Iconst 0);
  }

let test_escalations_not_counted_on_hits () =
  let g = tighten_goal () in
  Alcotest.(check bool) "tightened FM proves the goal" true
    (Solver.check_goal ~method_:Solver.Fm_tightened g = Solver.Valid);
  Alcotest.(check bool) "plain FM does not" true
    (Solver.check_goal ~method_:Solver.Fm_plain g <> Solver.Valid);
  let cache = Dml_cache.Cache.create () in
  let s1 = Solver.new_stats () in
  Alcotest.(check bool) "cold ladder proves the goal" true
    (Solver.check_goal_escalating ~stats:s1 ~cache g = Solver.Valid);
  Alcotest.(check bool) "the cold ladder escalated" true (s1.Solver.escalations >= 1);
  let s2 = Solver.new_stats () in
  Alcotest.(check bool) "warm ladder still proves the goal" true
    (Solver.check_goal_escalating ~stats:s2 ~cache g = Solver.Valid);
  Alcotest.(check int) "a ladder replayed from the cache counts no escalations" 0
    s2.Solver.escalations;
  Alcotest.(check int) "every rung was a cache hit" 0 s2.Solver.cache_misses;
  Alcotest.(check bool) "cache hits were recorded" true (s2.Solver.cache_hits >= 1)

(* --- regression: overflow escalations are not ladder escalations ------------ *)

(* The two counters answer different questions — "did a weaker method fail?"
   (solver.escalations, the method ladder) vs "did machine arithmetic run
   out of bits?" (solver.overflow_escalations, the lane fallback) — and an
   overflowing goal must bump only the latter, in both the per-run stats and
   the process-wide registry. *)
let overflow_goal () =
  let x = Ivar.fresh "x" and y = Ivar.fresh "y" in
  let big = 1 lsl 40 in
  let open Idx in
  {
    Constr.goal_vars = [ (x, Sint); (y, Sint) ];
    goal_hyps =
      [
        Bcmp (Rle, Imul (Iconst big, Ivar x), Ivar y);
        Bcmp (Rle, Ivar y, Imul (Iconst big, Ivar x));
      ];
    goal_concl = Bcmp (Rle, Ivar y, Iconst 0);
  }

let test_overflow_escalations_separate () =
  let g = overflow_goal () in
  let c_overflow = Metrics.counter "solver.overflow_escalations" in
  let c_ladder = Metrics.counter "solver.escalations" in
  let c_native = Metrics.counter "solver.native_solves" in
  let overflow0 = Metrics.value c_overflow
  and ladder0 = Metrics.value c_ladder
  and native0 = Metrics.value c_native in
  let stats = Solver.new_stats () in
  let v = Solver.check_goal ~method_:Solver.Fm_plain ~lane:Solver.Lane_native ~stats g in
  Alcotest.(check bool) "the overflowing goal still gets a verdict" true
    (v = Solver.check_goal ~method_:Solver.Fm_plain ~lane:Solver.Lane_bignum g);
  Alcotest.(check bool) "stats: overflow escalation recorded" true
    (stats.Solver.overflow_escalations >= 1);
  Alcotest.(check int) "stats: ladder escalations untouched" 0 stats.Solver.escalations;
  Alcotest.(check bool) "registry: solver.overflow_escalations bumped" true
    (Metrics.value c_overflow - overflow0 >= 1);
  Alcotest.(check int) "registry: solver.escalations untouched" 0
    (Metrics.value c_ladder - ladder0);
  (* a re-solve that never overflows completes natively and counts there *)
  let stats' = Solver.new_stats () in
  let g' = tighten_goal () in
  ignore (Solver.check_goal ~method_:Solver.Fm_tightened ~lane:Solver.Lane_native ~stats:stats' g');
  Alcotest.(check bool) "stats: native solve recorded on the fast path" true
    (stats'.Solver.native_solves >= 1);
  Alcotest.(check int) "stats: fast path never overflow-escalates" 0
    stats'.Solver.overflow_escalations;
  Alcotest.(check bool) "registry: solver.native_solves bumped" true
    (Metrics.value c_native - native0 >= 1)

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
          Alcotest.test_case "histogram accumulation" `Quick test_histogram;
          Alcotest.test_case "registry JSON dump" `Quick test_metrics_json;
          Alcotest.test_case "hits + misses = lookups" `Quick test_cache_lookup_invariant;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
          Alcotest.test_case "exception closes open spans" `Quick test_span_exception;
          Alcotest.test_case "trace JSON round-trip" `Quick test_trace_json;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_trace_no_alloc;
        ] );
      ( "json",
        [
          Alcotest.test_case "value round-trips" `Quick test_json_round_trip;
          Alcotest.test_case "invalid input rejected" `Quick test_json_rejects_garbage;
          Alcotest.test_case "golden file" `Quick test_json_golden;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "time_pair uses the wall clock" `Quick test_time_pair_wall_clock;
          Alcotest.test_case "store write failure leaks nothing" `Quick test_disk_write_fault;
          Alcotest.test_case "budget tier stable under the clock" `Quick
            test_tier_stable_under_clock;
          Alcotest.test_case "cache hits are not escalations" `Quick
            test_escalations_not_counted_on_hits;
          Alcotest.test_case "overflow escalations are not ladder escalations" `Quick
            test_overflow_escalations_separate;
        ] );
    ]
