(* Declaration-grain incremental rechecking (lib/core/incr.ml) and the
   dml-server/1 check_patch op: the edit-sequence differential fuzzer plus
   the deterministic regressions around it.

   The central property: after EVERY edit in a random patch sequence, the
   incremental report is byte-identical (modulo the schedule-dependent
   fields, both sides cache-free) to a cold full `Pipeline.check_s` of the
   same text.  Edits include binder renames, array-bound changes,
   out-of-bounds weakenings (residual obligations must match too),
   declaration swaps, delete/reinsert, parse-breaking garbage (failure
   documents must match too) and comment/whitespace-only decorations.  A
   failing sequence is shrunk to a minimal edit script before reporting. *)

module J = Dml_obs.Json
module Metrics = Dml_obs.Metrics
module P = Dml_core.Pipeline
module S = Dml_core.Session
module I = Dml_core.Incr
module R = Dml_core.Report_json
module Pr = Dml_programs.Programs
module Server = Dml_server.Server

let scrub doc = J.scrub ~keys:R.schedule_dependent_fields doc

let doc_of ~program result =
  match result with
  | Ok rp -> R.of_report ~program rp
  | Error f -> R.of_failure ~program f

let session () = S.create ~options:S.default_options ()

let full_doc src =
  scrub (doc_of ~program:"fuzz" (P.check_s (session ()) src))

let debug = Sys.getenv_opt "DML_INCR_FUZZ_DEBUG" <> None

let incr_doc st sess src =
  match I.check st sess src with
  | Ok (rp, stats) -> (scrub (R.of_report ~program:"fuzz" rp), Some stats)
  | Error f ->
      if debug then Printf.eprintf "fuzz failure step: %s\n%!" (P.failure_to_string f);
      (scrub (R.of_failure ~program:"fuzz" f), None)

(* --- the edit model ---------------------------------------------------- *)

(* The buffer is a list of segments: opaque corpus programs plus probe
   declarations the ops can rewrite structurally.  [p_bad] makes the
   probe's access out of bounds (a residual obligation, not an error);
   [s_comment] is a comment/whitespace decoration that must never dirty a
   unit. *)
type probe = { p_slot : int; p_suffix : int; p_idx : int; p_rev : int; p_bad : bool }

type body = Corpus of string | Probe of probe | Garbage of body

type seg = { s_body : body; s_comment : int }

let probe_text { p_slot; p_suffix; p_idx; p_rev; p_bad } =
  let name = Printf.sprintf "dmlprobe%d_%d" p_slot p_suffix in
  Printf.sprintf "fun %s(a) = sub(a, %d%s) + %d\nwhere %s <| {n:nat | n > %d} int array(n) -> int\n"
    name p_idx
    (if p_bad then " + 1" else "")
    p_rev name p_idx

let seg_text s =
  let body =
    match s.s_body with
    | Corpus src -> src
    | Probe p -> probe_text p
    | Garbage _ -> "fun = = garbage\n"
  in
  if s.s_comment = 0 then body
  else Printf.sprintf "(* decoration %d *)\n\n%s\n(* end %d *)\n" s.s_comment body s.s_comment

let render segs = String.concat "\n" (List.map seg_text segs)

type op =
  | Rename of int * int  (** probe pick, new suffix *)
  | Rebound of int * int  (** probe pick, new array bound *)
  | Bump of int * int  (** probe pick, new body constant *)
  | Toggle_bad of int  (** probe pick: flip in/out of bounds *)
  | Swap of int * int  (** segment positions *)
  | Delete of int  (** segment position -> clipboard *)
  | Reinsert of int  (** clipboard -> position *)
  | Break of int  (** replace segment with unparseable garbage *)
  | Comment of int * int  (** segment, decoration tag (0 clears) *)

let op_to_string = function
  | Rename (i, k) -> Printf.sprintf "Rename (%d, %d)" i k
  | Rebound (i, k) -> Printf.sprintf "Rebound (%d, %d)" i k
  | Bump (i, k) -> Printf.sprintf "Bump (%d, %d)" i k
  | Toggle_bad i -> Printf.sprintf "Toggle_bad %d" i
  | Swap (i, j) -> Printf.sprintf "Swap (%d, %d)" i j
  | Delete i -> Printf.sprintf "Delete %d" i
  | Reinsert i -> Printf.sprintf "Reinsert %d" i
  | Break i -> Printf.sprintf "Break %d" i
  | Comment (i, k) -> Printf.sprintf "Comment (%d, %d)" i k

type buffer = { segs : seg list; clipboard : seg option }

(* Ops address segments modulo the current length, so any script replays
   deterministically on any intermediate state — which is what makes
   shrinking (dropping arbitrary ops) sound. *)
let nth_mod segs i = i mod max 1 (List.length segs)

let update_at segs i f = List.mapi (fun j s -> if j = i then f s else s) segs

let probe_positions segs =
  List.filteri (fun _ _ -> true) (List.mapi (fun j s -> (j, s)) segs)
  |> List.filter_map (fun (j, s) -> match s.s_body with Probe _ -> Some j | _ -> None)

let update_probe buf pick f =
  match probe_positions buf.segs with
  | [] -> buf
  | ps ->
      let j = List.nth ps (pick mod List.length ps) in
      {
        buf with
        segs =
          update_at buf.segs j (fun s ->
              match s.s_body with
              | Probe p -> { s with s_body = Probe (f p) }
              | _ -> s);
      }

let apply buf op =
  match op with
  | Rename (pick, k) -> update_probe buf pick (fun p -> { p with p_suffix = k })
  | Rebound (pick, k) -> update_probe buf pick (fun p -> { p with p_idx = k mod 8 })
  | Bump (pick, k) -> update_probe buf pick (fun p -> { p with p_rev = k })
  | Toggle_bad pick -> update_probe buf pick (fun p -> { p with p_bad = not p.p_bad })
  | Swap (i, j) ->
      let i = nth_mod buf.segs i and j = nth_mod buf.segs j in
      let a = List.nth buf.segs i and b = List.nth buf.segs j in
      { buf with segs = List.mapi (fun k s -> if k = i then b else if k = j then a else s) buf.segs }
  | Delete i ->
      if List.length buf.segs <= 1 || buf.clipboard <> None then buf
      else
        let i = nth_mod buf.segs i in
        {
          segs = List.filteri (fun j _ -> j <> i) buf.segs;
          clipboard = Some (List.nth buf.segs i);
        }
  | Reinsert pos -> (
      match buf.clipboard with
      | None -> buf
      | Some s ->
          let pos = pos mod (List.length buf.segs + 1) in
          let before = List.filteri (fun j _ -> j < pos) buf.segs in
          let after = List.filteri (fun j _ -> j >= pos) buf.segs in
          { segs = before @ (s :: after); clipboard = None })
  | Break i -> (
      (* repair-first, and breaking is 3x rarer than repairing: parse
         failures must come and go, not dominate the run with
         trivially-matching failure documents *)
      let broken =
        List.find_index (fun s -> match s.s_body with Garbage _ -> true | _ -> false) buf.segs
      in
      match broken with
      | Some j ->
          {
            buf with
            segs =
              update_at buf.segs j (fun s ->
                  match s.s_body with
                  | Garbage original -> { s with s_body = original }
                  | body -> { s with s_body = body });
          }
      | None when i mod 3 = 0 ->
          let j = nth_mod buf.segs (i / 3) in
          { buf with segs = update_at buf.segs j (fun s -> { s with s_body = Garbage s.s_body }) }
      | None -> buf)
  | Comment (i, k) ->
      let i = nth_mod buf.segs i in
      { buf with segs = update_at buf.segs i (fun s -> { s with s_comment = k }) }

let initial_buffer () =
  let corpus =
    List.map
      (fun (b : Pr.benchmark) -> { s_body = Corpus b.Pr.source; s_comment = 0 })
      Pr.table_benchmarks
  in
  let probes =
    List.init 6 (fun i ->
        {
          s_body = Probe { p_slot = i; p_suffix = 0; p_idx = i mod 4; p_rev = 0; p_bad = false };
          s_comment = 0;
        })
  in
  { segs = corpus @ probes; clipboard = None }

let gen_op rand =
  let r n = Random.State.int rand n in
  match r 9 with
  | 0 -> Rename (r 16, 1 + r 50)
  | 1 -> Rebound (r 16, r 32)
  | 2 -> Bump (r 16, r 1000)
  | 3 -> Toggle_bad (r 16)
  | 4 -> Swap (r 32, r 32)
  | 5 -> if r 2 = 0 then Delete (r 32) else Reinsert (r 32)
  | 6 -> Break (r 32)
  | 7 -> Comment (r 32, r 5)
  | _ -> Bump (r 16, r 1000)

(* Replay a script on a fresh state, running the differential after every
   step.  Returns the index of the first divergent step, if any. *)
let replay ops =
  let sess = session () in
  let st = I.create () in
  let buf = ref (initial_buffer ()) in
  let rec go i = function
    | [] -> None
    | op :: rest ->
        buf := apply !buf op;
        let src = render !buf.segs in
        let idoc, _ = incr_doc st sess src in
        if J.to_string idoc <> J.to_string (full_doc src) then Some i else go (i + 1) rest
  in
  go 0 ops

(* Greedy shrink: repeatedly drop any op whose removal keeps the script
   failing, to a local fixpoint. *)
let shrink ops =
  let drop i l = List.filteri (fun j _ -> j <> i) l in
  let rec fixpoint ops =
    let n = List.length ops in
    let rec try_drop i =
      if i >= n then None
      else
        let candidate = drop i ops in
        if replay candidate <> None then Some candidate else try_drop (i + 1)
    in
    match try_drop 0 with Some smaller -> fixpoint smaller | None -> ops
  in
  fixpoint ops

let fuzz_steps () =
  match Sys.getenv_opt "DML_INCR_FUZZ_STEPS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let test_differential_fuzz () =
  let steps = fuzz_steps () in
  let rand = Random.State.make [| 0xD31; 0xE02 |] in
  let sess = session () in
  let st = I.create () in
  let buf = ref (initial_buffer ()) in
  let script = ref [] in
  let report_steps = ref 0 and failure_steps = ref 0 and reused_total = ref 0 in
  (try
     for step = 1 to steps do
       let op = gen_op rand in
       script := !script @ [ op ];
       buf := apply !buf op;
       let src = render !buf.segs in
       let idoc, stats = incr_doc st sess src in
       (match stats with
       | Some s ->
           incr report_steps;
           reused_total := !reused_total + s.I.st_reused
       | None -> incr failure_steps);
       let fdoc = full_doc src in
       if J.to_string idoc <> J.to_string fdoc then begin
         let minimal = shrink !script in
         Alcotest.failf
           "incremental and full reports diverged at step %d (%s); minimal edit script (%d \
            ops):\n%s"
           step (op_to_string op) (List.length minimal)
           (String.concat "\n" (List.map op_to_string minimal))
       end
     done
   with Stack_overflow -> Alcotest.fail "stack overflow during fuzz");
  (* the run must have exercised both worlds: real incremental reports with
     genuine reuse, and failure documents (Break steps) that matched too *)
  Alcotest.(check bool) "mostly real reports" true (!report_steps >= steps / 2);
  Alcotest.(check bool) "some failure steps" true (steps < 50 || !failure_steps > 0);
  Alcotest.(check bool) "reuse actually happened" true (!reused_total > 0);
  Alcotest.(check bool) "store grew" true (I.stored_units st > 0)

(* --- deterministic regressions ----------------------------------------- *)

let callee g =
  Printf.sprintf
    "fun callee(a) = sub(a, 0)\nwhere callee <| {n:nat | n > %d} int array(n) -> int\n" g

let caller =
  "fun caller(a) = callee(a) + sub(a, 3)\nwhere caller <| {n:nat | n > 5} int array(n) -> int\n"

(* (a) editing a callee's interface must re-solve its callers: the caller's
   obligations quantify over the callee's type, so its digest (which folds
   in the callee's) changes too. *)
let test_callee_interface_edit () =
  let sess = session () in
  let st = I.create () in
  (match I.check st sess (callee 0 ^ "\n" ^ caller) with
  | Ok (_, s) -> Alcotest.(check int) "base units" 2 s.I.st_units
  | Error f -> Alcotest.fail (P.failure_to_string f));
  let edited = callee 1 ^ "\n" ^ caller in
  match I.check st sess edited with
  | Ok (rp, s) ->
      Alcotest.(check int) "both units dirty" 2 s.I.st_dirty;
      Alcotest.(check int) "nothing reused" 0 s.I.st_reused;
      Alcotest.(check string) "report matches cold full check"
        (J.to_string (full_doc edited))
        (J.to_string (scrub (R.of_report ~program:"fuzz" rp)))
  | Error f -> Alcotest.fail (P.failure_to_string f)

(* (b) a comment/whitespace-only edit dirties nothing and never calls the
   solver — unit digests are over the parsed, pretty-printed declarations,
   so concrete syntax trivia cannot reach them. *)
let test_comment_only_edit_is_free () =
  let src = callee 0 ^ "\n" ^ caller in
  let sess = session () in
  let st = I.create () in
  (match I.check st sess src with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (P.failure_to_string f));
  let decorated = "(* a comment *)\n\n" ^ callee 0 ^ "\n  \n(* more *)\n" ^ caller ^ "\n" in
  let goals_before = Metrics.value (Metrics.counter "solver.goals") in
  match I.check st sess decorated with
  | Ok (rp, s) ->
      Alcotest.(check int) "dirty" 0 s.I.st_dirty;
      Alcotest.(check int) "solver calls" 0 s.I.st_solver_calls;
      Alcotest.(check int) "reused" 2 s.I.st_reused;
      Alcotest.(check bool) "no solver goals ran" true
        (Metrics.value (Metrics.counter "solver.goals") = goals_before);
      Alcotest.(check string) "report matches cold full check"
        (J.to_string (full_doc decorated))
        (J.to_string (scrub (R.of_report ~program:"fuzz" rp)))
  | Error f -> Alcotest.fail (P.failure_to_string f)

(* --- the acceptance criterion: >= 5x fewer solver calls ----------------- *)

(* For every Table 1 corpus program: establish it through check_patch, then
   send a 1-declaration edit (append an index-free helper).  The dml-check
   document must be byte-identical to a cold full check of the patched
   source, and the solver-call count — read off the metrics registry — must
   be at least 5x below the full check's. *)
let zero_probe = "fun dmlprobe(x) = x + 1\nwhere dmlprobe <| int -> int\n"

let patch_req ?base ~source () =
  J.Obj
    ([ ("op", J.String "check_patch"); ("id", J.Int 1); ("source", J.String source) ]
    @ match base with None -> [] | Some b -> [ ("base", J.String b) ])

let expect_ok name resp =
  match (J.member "ok" resp, J.member "result" resp) with
  | Some (J.Bool true), Some result -> result
  | _ -> Alcotest.failf "%s: expected an ok response, got %s" name (J.to_string resp)

let incr_field result name =
  match Option.bind (J.member "incr" result) (J.member name) with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "missing incr field %s in %s" name (J.to_string result)

let source_id_of result =
  match Option.bind (J.member "incr" result) (J.member "source_id") with
  | Some (J.String s) -> s
  | _ -> Alcotest.fail "missing incr.source_id"

let test_corpus_patch_solver_calls () =
  List.iter
    (fun (b : Pr.benchmark) ->
      let options = { S.default_options with S.op_incremental = true } in
      let server = Server.create ~options () in
      let base_result =
        expect_ok (b.Pr.name ^ " base")
          (Server.handle server (patch_req ~source:b.Pr.source ()))
      in
      let patched = b.Pr.source ^ "\n" ^ zero_probe in
      let calls0 = Metrics.value (Metrics.counter "incr.solver_calls") in
      let patch_result =
        expect_ok (b.Pr.name ^ " patch")
          (Server.handle server
             (patch_req ~base:(source_id_of base_result) ~source:patched ()))
      in
      let incr_calls = Metrics.value (Metrics.counter "incr.solver_calls") - calls0 in
      Alcotest.(check int)
        (b.Pr.name ^ ": registry delta agrees with the incr object")
        (incr_field patch_result "solver_calls")
        incr_calls;
      let full_rp =
        match P.check_s (session ()) patched with
        | Ok rp -> rp
        | Error f -> Alcotest.fail (P.failure_to_string f)
      in
      let full_calls = List.length full_rp.P.rp_obligations in
      Alcotest.(check bool) (b.Pr.name ^ ": full check solves something") true (full_calls > 0);
      if incr_calls * 5 > full_calls then
        Alcotest.failf "%s: %d incremental solver calls vs %d full — less than 5x apart"
          b.Pr.name incr_calls full_calls;
      match J.member "check" patch_result with
      | Some doc ->
          Alcotest.(check string)
            (b.Pr.name ^ ": byte-identical to a cold full check")
            (J.to_string (scrub (R.of_report ~program:"-" full_rp)))
            (J.to_string (scrub doc))
      | None -> Alcotest.fail "missing check document")
    Pr.table_benchmarks

(* --- unit digests ------------------------------------------------------- *)

let parse src =
  match Dml_lang.Parser.parse_program src with
  | p -> p
  | exception e -> Alcotest.failf "parse failed: %s" (Printexc.to_string e)

let test_unit_digests () =
  let base = parse (callee 0 ^ "\n" ^ caller) in
  let ds = I.unit_digests base in
  Alcotest.(check int) "one digest per declaration" 2 (List.length ds);
  (* deterministic *)
  Alcotest.(check (list string)) "stable" ds (I.unit_digests (parse (callee 0 ^ "\n" ^ caller)));
  (* an interface edit changes the callee's digest and its caller's *)
  let edited = I.unit_digests (parse (callee 1 ^ "\n" ^ caller)) in
  List.iter2
    (fun d d' -> Alcotest.(check bool) "digest changed" true (d <> d'))
    ds edited;
  (* trivia never reaches a digest *)
  Alcotest.(check (list string)) "comment-insensitive" ds
    (I.unit_digests (parse ("(* x *)\n" ^ callee 0 ^ "\n(* y *)\n" ^ caller)))

(* --- byte-stability guard ----------------------------------------------- *)

(* With op_incremental unset, nothing this PR added may perturb options
   JSON, fingerprints or memo keys: the seed constants are pinned here
   verbatim, so any accidental unconditional field shows up as a diff. *)
let test_fingerprint_stability () =
  Alcotest.(check string) "default options JSON"
    {|{"solve":{"method":"fm","escalate":false,"fuel":null,"timeout_ms":null,"max_eliminations":null},"cache":null,"mode":"strict","jobs":null,"shard_obligations":false}|}
    (J.to_string (S.options_to_json S.default_options));
  Alcotest.(check string) "default fingerprint" "a51a51bdc4cf65535b042e7a74c4b056"
    (S.fingerprint S.default_options);
  Alcotest.(check string) "memo key shape"
    "071ff3dd54ba73a5c062b276fd74a102:a51a51bdc4cf65535b042e7a74c4b056"
    (S.memo_key S.default_options "val x = 1");
  (* and with the flag set, the fingerprint moves *)
  let on = { S.default_options with S.op_incremental = true } in
  Alcotest.(check bool) "incremental fingerprint differs" true
    (S.fingerprint on <> S.fingerprint S.default_options)

let () =
  Alcotest.run "incr"
    [
      ( "differential",
        [
          Alcotest.test_case "edit-sequence fuzz" `Slow test_differential_fuzz;
          Alcotest.test_case "callee interface edit re-solves callers" `Quick
            test_callee_interface_edit;
          Alcotest.test_case "comment-only edit is free" `Quick test_comment_only_edit_is_free;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "corpus 1-decl patches: >=5x fewer solver calls" `Slow
            test_corpus_patch_solver_calls;
        ] );
      ( "units",
        [
          Alcotest.test_case "unit digests" `Quick test_unit_digests;
          Alcotest.test_case "fingerprint byte-stability" `Quick test_fingerprint_stability;
        ] );
    ]
