(* Integration tests: every benchmark program of Section 4 goes through the
   full pipeline and runs its (verified) workload on the backends.  The
   drivers in Dml_programs.Workloads check all results against OCaml
   reference implementations, so a single successful run is an end-to-end
   correctness check of parser, inference, elaboration, solver, and
   evaluator together. *)

open Dml_core
open Dml_eval

let typecheck (b : Dml_programs.Programs.benchmark) =
  match Pipeline.check_valid_s (Session.create ()) b.Dml_programs.Programs.source with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: %s" b.Dml_programs.Programs.name msg

let compiled_exec mode ?counters tprog =
  let ce = Compile.initial_fast mode ?counters () in
  let ce = Compile.run_program ce tprog in
  { Dml_programs.Workloads.lookup = Compile.lookup ce }

let interp_exec mode ?counters tprog =
  let env = Interp.initial_env (Prims.table mode ?counters ()) in
  let env = Interp.run_program env tprog in
  { Dml_programs.Workloads.lookup = Interp.lookup env }

let cycles_exec mode counters tprog =
  let env = Cycles.initial_env mode counters in
  let env = Cycles.run_program env tprog in
  { Dml_programs.Workloads.lookup = Cycles.lookup env }

(* run a benchmark under both disciplines and check the counter algebra:
   every check executed in checked mode is either eliminated or residual in
   unchecked mode *)
let test_benchmark (b : Dml_programs.Programs.benchmark) () =
  let report = typecheck b in
  let tprog = report.Pipeline.rp_tprog in
  let run mode =
    let counters = Prims.new_counters () in
    let ex = compiled_exec mode ~counters tprog in
    (try ignore (b.Dml_programs.Programs.run ex ~scale:1)
     with Dml_programs.Workloads.Verification_failure msg -> Alcotest.fail msg);
    counters
  in
  let checked = run Prims.Checked in
  let unchecked = run Prims.Unchecked in
  Alcotest.(check int)
    (b.Dml_programs.Programs.name ^ ": checks partition")
    checked.Prims.dynamic_checks
    (unchecked.Prims.eliminated_checks + unchecked.Prims.dynamic_checks);
  (* programs that perform checked accesses must see them eliminated;
     reverse and filter are pure pattern matching and have none to count *)
  if checked.Prims.dynamic_checks > 0 then
    Alcotest.(check bool)
      (b.Dml_programs.Programs.name ^ ": something to eliminate")
      true
      (unchecked.Prims.eliminated_checks > 0)

let benchmark_tests =
  List.map
    (fun (b : Dml_programs.Programs.benchmark) ->
      Alcotest.test_case b.Dml_programs.Programs.name `Slow (test_benchmark b))
    Dml_programs.Programs.all

(* the interpreter backend agrees on the lighter workloads *)
let test_interp_backend () =
  List.iter
    (fun name ->
      let b = Option.get (Dml_programs.Programs.find name) in
      let report = typecheck b in
      let ex = interp_exec Prims.Checked report.Pipeline.rp_tprog in
      try ignore (b.Dml_programs.Programs.run ex ~scale:1)
      with Dml_programs.Workloads.Verification_failure msg -> Alcotest.fail msg)
    [ "queen"; "list access"; "hanoi towers" ]

(* the cost model is deterministic: the checked/unchecked cycle difference is
   exactly check_cost per eliminated check *)
let test_cost_model_algebra () =
  List.iter
    (fun name ->
      let b = Option.get (Dml_programs.Programs.find name) in
      let report = typecheck b in
      let tprog = report.Pipeline.rp_tprog in
      let run mode =
        let counters = Prims.new_counters () in
        let ex = cycles_exec mode counters tprog in
        (try ignore (b.Dml_programs.Programs.run ex ~scale:1)
         with Dml_programs.Workloads.Verification_failure msg -> Alcotest.fail msg);
        counters
      in
      let checked = run Prims.Checked in
      let unchecked = run Prims.Unchecked in
      Alcotest.(check int)
        (name ^ ": cycle difference = check_cost * eliminated")
        (Prims.check_cost * unchecked.Prims.eliminated_checks)
        (checked.Prims.cycles - unchecked.Prims.cycles))
    [ "queen"; "list access"; "hanoi towers"; "binary search" ]

(* Table 1 regenerates for every row *)
let test_table1 () =
  List.iter
    (fun row ->
      match row with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check bool) (r.Dml_programs.Tables.t1_name ^ ": has constraints") true
            (r.Dml_programs.Tables.t1_constraints > 0);
          Alcotest.(check bool) (r.Dml_programs.Tables.t1_name ^ ": has annotations") true
            (r.Dml_programs.Tables.t1_annotations > 0))
    (Dml_programs.Tables.table1 ())

(* Table 2 (cost model) is deterministic: the gain is positive on every row *)
let test_table2_gains () =
  List.iter
    (fun row ->
      match row with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check bool)
            (r.Dml_programs.Tables.t23_name ^ ": unchecked wins")
            true
            (r.Dml_programs.Tables.t23_gain_pct > 0.))
    (Dml_programs.Tables.table23 Backend.cost_model ~scale:1)

(* KMP is the one program with residual checks (the subCK sites of Figure 5) *)
let test_kmp_residual () =
  let b = Option.get (Dml_programs.Programs.find "kmp") in
  let report = typecheck b in
  let counters = Prims.new_counters () in
  let ex = compiled_exec Prims.Unchecked ~counters report.Pipeline.rp_tprog in
  ignore (b.Dml_programs.Programs.run ex ~scale:1);
  Alcotest.(check bool) "kmp keeps some dynamic checks" true (counters.Prims.dynamic_checks > 0);
  Alcotest.(check bool) "kmp eliminates most checks" true
    (counters.Prims.eliminated_checks > counters.Prims.dynamic_checks)

(* all other table programs eliminate every check *)
let test_full_elimination () =
  List.iter
    (fun (b : Dml_programs.Programs.benchmark) ->
      let report = typecheck b in
      let counters = Prims.new_counters () in
      let ex = compiled_exec Prims.Unchecked ~counters report.Pipeline.rp_tprog in
      ignore (b.Dml_programs.Programs.run ex ~scale:1);
      Alcotest.(check int)
        (b.Dml_programs.Programs.name ^ ": no residual checks")
        0 counters.Prims.dynamic_checks)
    Dml_programs.Programs.table_benchmarks

let () =
  Alcotest.run "programs"
    [
      ("benchmarks (both disciplines, verified)", benchmark_tests);
      ( "backends",
        [
          Alcotest.test_case "interpreter backend" `Slow test_interp_backend;
          Alcotest.test_case "cost model algebra" `Slow test_cost_model_algebra;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table 1 rows" `Quick test_table1;
          Alcotest.test_case "table 2 gains positive" `Slow test_table2_gains;
          Alcotest.test_case "kmp residual checks" `Slow test_kmp_residual;
          Alcotest.test_case "full elimination elsewhere" `Slow test_full_elimination;
        ] );
    ]
