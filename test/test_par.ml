(* The parallel executor: pool semantics (ordering, isolation of worker
   exceptions, crashes and hangs, observability aggregation) and the
   sequential-vs-parallel oracle — every sharding mode must produce the same
   verdicts, degradation sites and JSON bytes as the in-process reference,
   including under injected worker crashes and timeouts. *)

open Dml_index
open Dml_constr
open Dml_par
module Json = Dml_obs.Json
module Metrics = Dml_obs.Metrics
module Trace = Dml_obs.Trace
module Solver = Dml_solver.Solver
module Programs = Dml_programs.Programs

(* --- pool unit tests -------------------------------------------------------- *)

(* the deleted optional-arg front door, expressed in session options *)
let check_targets ?task_timeout_ms ?cache ?(shard_obligations = false) ~mode targets =
  let options =
    {
      Dml_core.Session.default_options with
      Dml_core.Session.op_jobs =
        (match mode with Runner.Sequential -> None | Runner.Workers n -> Some n);
      op_shard_obligations = shard_obligations;
      op_cache = cache;
    }
  in
  Runner.check_targets_s ?task_timeout_ms options targets

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "task failed: %s" (Pool.error_to_string e)

let test_empty () =
  Alcotest.(check int) "no tasks, no outcomes" 0
    (List.length (Pool.run ~worker:(fun () -> ()) []))

let test_order_preserved () =
  let tasks = List.init 50 (fun i -> i) in
  let outcomes = Pool.run ~jobs:4 ~worker:(fun i -> i * i) tasks in
  Alcotest.(check (list int))
    "results in task order regardless of scheduling"
    (List.map (fun i -> i * i) tasks)
    (List.map ok_or_fail outcomes)

let test_many_tasks_few_workers () =
  let tasks = List.init 100 string_of_int in
  let outcomes = Pool.run ~jobs:2 ~worker:(fun s -> s ^ "!") tasks in
  Alcotest.(check (list string))
    "100 tasks through 2 workers"
    (List.map (fun s -> s ^ "!") tasks)
    (List.map ok_or_fail outcomes)

let test_worker_exception () =
  let outcomes =
    Pool.run ~jobs:2
      ~worker:(fun i -> if i = 3 then failwith "boom" else i)
      (List.init 6 Fun.id)
  in
  List.iteri
    (fun i o ->
      match o with
      | Ok v -> Alcotest.(check int) "untouched task" i v
      | Error (Pool.Exception msg) ->
          Alcotest.(check int) "only the raising task errors" 3 i;
          Alcotest.(check bool) "exception text shipped back" true
            (String.length msg > 0)
      | Error e -> Alcotest.failf "unexpected outcome: %s" (Pool.error_to_string e))
    outcomes

(* a worker that exits mid-task costs exactly that task; the pool respawns
   and the rest of the queue completes *)
let test_crash_isolation () =
  let outcomes =
    Pool.run ~jobs:2
      ~worker:(fun i -> if i = 2 then Unix._exit 42 else i)
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i o ->
      match o with
      | Ok v -> Alcotest.(check int) "untouched task" i v
      | Error (Pool.Crashed _) -> Alcotest.(check int) "only the exiting task dies" 2 i
      | Error e -> Alcotest.failf "unexpected outcome: %s" (Pool.error_to_string e))
    outcomes

let test_sigkill_isolation () =
  let outcomes =
    Pool.run ~jobs:2
      ~worker:(fun i ->
        if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        i)
      (List.init 4 Fun.id)
  in
  List.iteri
    (fun i o ->
      match o with
      | Ok v -> Alcotest.(check int) "untouched task" i v
      | Error (Pool.Crashed _) -> Alcotest.(check int) "only the killed task dies" 1 i
      | Error e -> Alcotest.failf "unexpected outcome: %s" (Pool.error_to_string e))
    outcomes

let test_watchdog_timeout () =
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.run ~jobs:2 ~task_timeout_ms:300
      ~worker:(fun i ->
        if i = 0 then Unix.sleep 3600;
        i)
      (List.init 4 Fun.id)
  in
  (match List.hd outcomes with
  | Error (Pool.Timed_out s) ->
      Alcotest.(check bool) "elapsed at least the deadline" true (s >= 0.25)
  | o ->
      Alcotest.failf "hung task should time out, got %s"
        (match o with Ok _ -> "Ok" | Error e -> Pool.error_to_string e));
  List.iteri (fun i o -> if i > 0 then Alcotest.(check int) "other tasks" i (ok_or_fail o)) outcomes;
  Alcotest.(check bool) "watchdog bounds the wall clock" true
    (Unix.gettimeofday () -. t0 < 20.)

let test_metrics_aggregated () =
  let c = Metrics.counter "test.par.tasks" in
  let before = Metrics.value c in
  let outcomes =
    Pool.run ~jobs:3
      ~worker:(fun i ->
        Metrics.incr ~by:i c;
        i)
      (List.init 10 Fun.id)
  in
  List.iter (fun o -> ignore (ok_or_fail o)) outcomes;
  Alcotest.(check int) "parent registry absorbed every worker increment" (before + 45)
    (Metrics.value c)

let test_spans_adopted () =
  let sink = Trace.create_sink () in
  Trace.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let outcomes =
        Pool.run ~jobs:2
          ~worker:(fun i -> Trace.with_span "wtask" (fun _ -> i))
          (List.init 6 Fun.id)
      in
      List.iter (fun o -> ignore (ok_or_fail o)) outcomes);
  Alcotest.(check int) "one adopted worker span per task" 6
    (List.length
       (List.filter (fun sp -> Trace.span_name sp = "wtask") (Trace.roots sink)))

(* --- solver goals through the pool ------------------------------------------- *)

(* a small mixed family (valid and not) of marshalled goals: the pooled
   verdict slugs must equal the in-process solver's *)
let goal_family () =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          let x = Ivar.fresh "x" in
          let g concl =
            {
              Constr.goal_vars = [ (x, Idx.Sint) ];
              goal_hyps = [ Idx.Bcmp (Idx.Rge, Idx.Ivar x, Idx.Iconst a) ];
              goal_concl = concl;
            }
          in
          [
            g (Idx.Bcmp (Idx.Rge, Idx.Ivar x, Idx.Iconst (a - b)));
            g (Idx.Bcmp (Idx.Rle, Idx.Ivar x, Idx.Iconst (a + b)));
          ])
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2; 3; 4 ]

let test_goal_batch_oracle () =
  let goals = goal_family () in
  let seq = List.map (fun g -> Solver.verdict_slug (Solver.check_goal g)) goals in
  let par =
    Pool.run ~jobs:4 ~worker:(fun g -> Solver.verdict_slug (Solver.check_goal g)) goals
    |> List.map ok_or_fail
  in
  Alcotest.(check (list string)) "pooled goal verdicts match sequential" seq par

(* --- the runner oracle -------------------------------------------------------- *)

let corpus_targets () =
  List.map
    (fun (b : Programs.benchmark) ->
      { Runner.tg_name = b.Programs.name; tg_source = Ok b.Programs.source })
    Programs.all

(* the schedule-independent projection of a row: verdict-derived fields and
   per-obligation slugs/locations, but no times and no cache-topology
   figures (a shared sequential cache and per-worker caches legitimately
   differ on hit counts) *)
let proj_row (r : Runner.row) =
  match r.Runner.row_result with
  | Error e -> Printf.sprintf "%s ERROR %s" r.Runner.row_name e
  | Ok s ->
      Printf.sprintf "%s valid=%b cons=%d resid=%d timeouts=%d goals=%d obs=[%s]"
        r.Runner.row_name s.Runner.sm_valid s.Runner.sm_constraints s.Runner.sm_residual
        s.Runner.sm_timeouts s.Runner.sm_goals
        (String.concat "; "
           (List.map
              (fun (o : Runner.obligation_row) ->
                Printf.sprintf "%s@%s:%s" o.Runner.or_what o.Runner.or_loc
                  o.Runner.or_verdict)
              s.Runner.sm_obligations))

let doc_bytes rows = Json.to_string_pretty (Runner.batch_json ~passes:[ rows ] ())

let test_corpus_oracle () =
  let targets = corpus_targets () in
  let cache = Dml_cache.Cache.default_config in
  let run mode shard = check_targets ~mode ~shard_obligations:shard ~cache targets in
  let base = run Runner.Sequential false in
  let base_proj = List.map proj_row base in
  let base_json = doc_bytes base in
  Alcotest.(check bool) "corpus checks under the reference" true
    (List.for_all (fun r -> Result.is_ok r.Runner.row_result) base);
  let modes =
    [
      ("j1", Runner.Workers 1, false);
      ("j4", Runner.Workers 4, false);
      ("jnproc", Runner.Workers (Pool.cpu_count ()), false);
      ("j2-obligations", Runner.Workers 2, true);
    ]
    @
    (* CI exports DML_PAR_JOBS to pin an extra width into the oracle *)
    match Sys.getenv_opt "DML_PAR_JOBS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> [ ("env-j" ^ s, Runner.Workers n, false) ]
        | _ -> [])
    | None -> []
  in
  List.iter
    (fun (label, mode, shard) ->
      let rows = run mode shard in
      Alcotest.(check (list string)) (label ^ ": rows") base_proj (List.map proj_row rows);
      Alcotest.(check string) (label ^ ": JSON bytes") base_json (doc_bytes rows))
    modes

let with_env var value f =
  Unix.putenv var value;
  (* unset is not portable; the empty string never matches a program name *)
  Fun.protect ~finally:(fun () -> Unix.putenv var "") f

let test_injected_crash () =
  let targets = corpus_targets () in
  with_env "DML_PAR_TEST_CRASH" "queen" (fun () ->
      let r1 = check_targets ~mode:(Runner.Workers 1) targets in
      let r4 = check_targets ~mode:(Runner.Workers 4) targets in
      List.iter
        (fun rows ->
          let crashed = List.find (fun r -> r.Runner.row_name = "queen") rows in
          Alcotest.(check bool) "injected program degrades to an error row" true
            (crashed.Runner.row_result = Error "worker crashed");
          Alcotest.(check int) "every other program still checks"
            (List.length targets - 1)
            (List.length (List.filter (fun r -> Result.is_ok r.Runner.row_result) rows)))
        [ r1; r4 ];
      Alcotest.(check string) "degraded JSON identical across -j" (doc_bytes r1)
        (doc_bytes r4))

let test_injected_hang () =
  let targets = corpus_targets () in
  let t0 = Unix.gettimeofday () in
  with_env "DML_PAR_TEST_HANG" "list access" (fun () ->
      let rows =
        check_targets ~mode:(Runner.Workers 2) ~task_timeout_ms:500 targets
      in
      let hung = List.find (fun r -> r.Runner.row_name = "list access") rows in
      Alcotest.(check bool) "hung program degrades to a timeout row" true
        (hung.Runner.row_result = Error "worker timed out");
      Alcotest.(check int) "every other program still checks"
        (List.length targets - 1)
        (List.length (List.filter (fun r -> Result.is_ok r.Runner.row_result) rows)));
  Alcotest.(check bool) "watchdog bounds the batch" true
    (Unix.gettimeofday () -. t0 < 30.)

(* a front-end failure is diagnosed in the parent under obligation sharding
   and in a worker under program sharding — same row either way *)
let test_failure_rows_match () =
  let targets =
    corpus_targets ()
    @ [
        { Runner.tg_name = "bad"; tg_source = Ok "fun f(x) = (" };
        { Runner.tg_name = "unreadable"; tg_source = Error "no such file" };
      ]
  in
  let seq = check_targets ~mode:Runner.Sequential targets in
  let j2 = check_targets ~mode:(Runner.Workers 2) targets in
  let sh = check_targets ~mode:(Runner.Workers 2) ~shard_obligations:true targets in
  Alcotest.(check (list string)) "program-sharded failure rows"
    (List.map proj_row seq) (List.map proj_row j2);
  Alcotest.(check (list string)) "obligation-sharded failure rows"
    (List.map proj_row seq) (List.map proj_row sh)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "empty task list" `Quick test_empty;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "more tasks than workers" `Quick test_many_tasks_few_workers;
          Alcotest.test_case "worker exception" `Quick test_worker_exception;
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "sigkill isolation" `Quick test_sigkill_isolation;
          Alcotest.test_case "watchdog timeout" `Quick test_watchdog_timeout;
          Alcotest.test_case "metrics aggregated" `Quick test_metrics_aggregated;
          Alcotest.test_case "spans adopted" `Quick test_spans_adopted;
        ] );
      ("goals", [ Alcotest.test_case "pooled solver oracle" `Quick test_goal_batch_oracle ]);
      ( "runner",
        [
          Alcotest.test_case "corpus oracle" `Quick test_corpus_oracle;
          Alcotest.test_case "injected crash" `Quick test_injected_crash;
          Alcotest.test_case "injected hang" `Quick test_injected_hang;
          Alcotest.test_case "failure rows" `Quick test_failure_rows_match;
        ] );
    ]
