(* Pattern-match exhaustiveness and redundancy warnings (phase 1). *)

open Dml_core

let warnings_of src =
  match Pipeline.check_s (Session.create ()) src with
  | Ok r -> List.map fst r.Pipeline.rp_warnings
  | Error f -> Alcotest.failf "unexpected failure: %s" (Pipeline.failure_to_string f)

let has_warning warnings fragment =
  List.exists
    (fun w ->
      let rec contains i =
        i + String.length fragment <= String.length w
        && (String.sub w i (String.length fragment) = fragment || contains (i + 1))
      in
      contains 0)
    warnings

let check_warn name src fragment =
  let ws = warnings_of src in
  if not (has_warning ws fragment) then
    Alcotest.failf "%s: expected a warning containing %S, got [%s]" name fragment
      (String.concat "; " ws)

let check_clean name src =
  match warnings_of src with
  | [] -> ()
  | ws -> Alcotest.failf "%s: unexpected warnings: %s" name (String.concat "; " ws)

let test_nonexhaustive () =
  check_warn "missing nil" {|
fun head(x :: _) = x
|} "not exhaustive";
  check_warn "missing cons" {|
fun isNil(nil) = true
|} "not exhaustive";
  check_warn "int patterns never complete"
    {|
fun f(0) = 1
  | f(1) = 2
|} "not exhaustive";
  check_warn "missing bool case" {|
val f = fn true => 1
|} "not exhaustive";
  check_warn "case expression"
    {|
val x = case 1 :: nil of y :: _ => y
|}
    "not exhaustive";
  check_warn "nested: cons of nil"
    {|
fun f(x :: nil) = x
  | f(nil) = 0
|} "not exhaustive";
  check_warn "tuple component"
    {|
fun f((0, y)) = y
|} "not exhaustive";
  check_warn "partial option" {|
fun get(SOME x) = x
|} "not exhaustive"

let test_exhaustive () =
  check_clean "two list cases" {|
fun len(nil) = 0
  | len(_ :: xs) = 1 + len(xs)
|};
  check_clean "wildcard" {|
fun f(_) = 1
|};
  check_clean "bools" {|
fun b2i(true) = 1
  | b2i(false) = 0
|};
  check_clean "int with catch-all" {|
fun f(0) = 1
  | f(n) = n
|};
  check_clean "nested complete"
    {|
fun f(nil) = 0
  | f(x :: nil) = x
  | f(x :: _ :: _) = x
|};
  check_clean "tuple of wildcards" {|
fun fst((x, _)) = x
|};
  check_clean "three constructors"
    {|
fun o2i(LESS) = ~1
  | o2i(EQUAL) = 0
  | o2i(GREATER) = 1
|}

let test_redundant () =
  check_warn "duplicate literal"
    {|
fun f(0) = 1
  | f(0) = 2
  | f(n) = n
|} "unused";
  check_warn "after catch-all"
    {|
fun f(n) = n
  | f(0) = 1
|} "unused";
  check_warn "case arm shadowed"
    {|
val x = case 1 :: nil of
  _ => 0
| nil => 1
|}
    "unused";
  check_clean "no false positives"
    {|
fun f(nil) = 0
  | f(x :: _) = x
|}

let test_multi_argument_clauses () =
  check_warn "curried clause matrix"
    {|
fun both true true = 1
  | both false false = 0
|} "not exhaustive";
  check_clean "complete curried matrix"
    {|
fun both true true = 1
  | both true false = 2
  | both false true = 3
  | both false false = 0
|}

(* direct checks of the usefulness engine through a realistic program *)
let test_benchmarks_warning_free () =
  List.iter
    (fun (b : Dml_programs.Programs.benchmark) ->
      (* zip-style functions legitimately warn; the table benchmarks are
         warning-free *)
      if b.Dml_programs.Programs.in_tables then
        match warnings_of b.Dml_programs.Programs.source with
        | [] -> ()
        | ws ->
            Alcotest.failf "%s: unexpected warnings: %s" b.Dml_programs.Programs.name
              (String.concat "; " ws))
    Dml_programs.Programs.all

let () =
  Alcotest.run "coverage"
    [
      ( "exhaustiveness",
        [
          Alcotest.test_case "non-exhaustive matches warn" `Quick test_nonexhaustive;
          Alcotest.test_case "exhaustive matches are clean" `Quick test_exhaustive;
        ] );
      ( "redundancy",
        [ Alcotest.test_case "unused cases warn" `Quick test_redundant ] );
      ( "matrices",
        [
          Alcotest.test_case "multi-argument clauses" `Quick test_multi_argument_clauses;
          Alcotest.test_case "table benchmarks are warning-free" `Quick
            test_benchmarks_warning_free;
        ] );
    ]
