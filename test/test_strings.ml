(* Strings and characters, with the length-indexed [string(n)] family:
   string literals are singletons of their length, [string_sub] carries the
   same dependent signature as [sub], and a string-based KMP matcher runs
   with its bound checks eliminated. *)

open Dml_core
open Dml_eval
open Value

let typecheck name src =
  match Pipeline.check_valid_s (Session.create ()) src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: %s" name msg

let run ?counters mode tprog name =
  let ce = Compile.initial_fast mode ?counters () in
  Compile.lookup (Compile.run_program ce tprog) name

let value = Alcotest.testable Value.pp Value.equal

let both name src binding expected =
  let r = typecheck name src in
  Alcotest.check value name expected (run Prims.Checked r.Pipeline.rp_tprog binding);
  Alcotest.check value (name ^ " (unchecked)") expected
    (run Prims.Unchecked r.Pipeline.rp_tprog binding)

let test_literals () =
  both "string literal" {| val s = "hello" |} "s" (Vstring "hello");
  both "escapes" {| val s = "a\nb\t\"c\"\\" |} "s" (Vstring "a\nb\t\"c\"\\");
  both "char literal" {| val c = #"x" |} "c" (Vchar 'x');
  both "empty string" {| val s = "" |} "s" (Vstring "")

let test_operations () =
  both "size of literal" {| val n = size("hello") |} "n" (Vint 5);
  both "concat" {| val s = "foo" ^ "bar" ^ "!" |} "s" (Vstring "foobar!");
  (* ord(c)+1 can be 256, so the checked chr is required for the +1 *)
  both "ord/chr roundtrip" {| val c = chrCK(ord(#"A") + 1) |} "c" (Vchar 'B');
  both "ord/chr exact" {| val c = chr(ord(#"B")) |} "c" (Vchar 'B');
  both "char comparisons" {| val x = (ceq(#"a", #"a"), clt(#"a", #"b")) |} "x"
    (Vtuple [ Vbool true; Vbool true ]);
  both "substring" {| val s = substring("typechecking", 4, 5) |} "s" (Vstring "check");
  both "int_to_string" {| val s = int_to_string(42) ^ "!" |} "s" (Vstring "42!")

let test_singleton_lengths () =
  (* literal indices are exact: in-bounds literal accesses are proven *)
  both "literal access" {| val c = string_sub("hello", 4) |} "c" (Vchar 'o');
  (* out of bounds is rejected statically *)
  (match Pipeline.check_s (Session.create ()) {| val c = string_sub("hello", 5) |} with
  | Ok r when not r.Pipeline.rp_valid -> ()
  | Ok _ -> Alcotest.fail "out-of-bounds literal access accepted"
  | Error f -> Alcotest.failf "unexpected: %s" (Pipeline.failure_to_string f));
  (* concatenation adds lengths at the index level *)
  both "length through concat"
    {|
fun both_sizes(a, b) = size(a ^ b)
where both_sizes <| {m:nat} {n:nat} string(m) * string(n) -> int(m+n)
val x = both_sizes("ab", "cde")
|}
    "x" (Vint 5);
  (* chr of a proven-small value runs unchecked *)
  both "chr proven" {|
fun low(c) = chr(ord(c) mod 256)
where low <| char -> char
val x = low(#"Q")
|} "x" (Vchar 'Q')

let test_string_patterns () =
  both "string patterns"
    {|
fun greet("hi") = 1
  | greet("bye") = 2
  | greet(_) = 0
val x = (greet("hi"), greet("bye"), greet("what"))
|}
    "x"
    (Vtuple [ Vint 1; Vint 2; Vint 0 ]);
  both "char patterns"
    {|
fun classify(#"a") = 1
  | classify(#"b") = 2
  | classify(_) = 0
val x = (classify(#"a"), classify(#"z"))
|}
    "x"
    (Vtuple [ Vint 1; Vint 0 ]);
  (* matching a string literal pins the length index *)
  both "length hypothesis from a string pattern"
    {|
fun f(s) = case s of
    "abc" => string_sub(s, 2)
  | _ => #"?"
where f <| {n:nat} string(n) -> char
val x = f("abc")
|}
    "x" (Vchar 'c')

(* KMP over real strings: the loop invariants transfer verbatim *)
let string_kmp =
  {|
fun kmpString(text, pat) = let
  val tlen = size(text)
  val plen = size(pat)
  fun mloop(s, p) =
    if s < tlen then
      (if p < plen then
        (if ceq(string_sub(text, s), string_sub(pat, p)) then mloop(s + 1, p + 1)
         else if p = 0 then mloop(s + 1, p)
         else mloop(s - p + 1, 0))
       else s - plen)
    else if p = plen then s - plen
    else ~1
  where mloop <| {s:nat} {p:nat | p <= s} int(s) * int(p) -> int
in
  mloop(0, 0)
end
where kmpString <| {t:nat} {q:nat} string(t) * string(q) -> int
|}

let test_string_search () =
  let r = typecheck "string kmp" string_kmp in
  let counters = Prims.new_counters () in
  let f = run ~counters Prims.Unchecked r.Pipeline.rp_tprog "kmpString" in
  let search text pat = as_int (as_fun f (Vtuple [ Vstring text; Vstring pat ])) in
  Alcotest.(check int) "find word" 16 (search "the quick brown fox" "fox");
  Alcotest.(check int) "find at start" 0 (search "abcabc" "abc");
  Alcotest.(check int) "find at end" 4 (search "xxxxyz" "yz");
  Alcotest.(check int) "absent" (-1) (search "aaaa" "ab");
  Alcotest.(check int) "empty pattern" 0 (search "abc" "");
  Alcotest.(check bool) "checks eliminated" true (counters.Prims.eliminated_checks > 0);
  Alcotest.(check int) "no residual checks" 0 counters.Prims.dynamic_checks

let test_subscript_observable () =
  both "string_subCK raises and is handled"
    {|
fun at(s, i) = string_subCK(s, i) handle Subscript => #"?"
val x = (at("hey", 1), at("hey", 9))
|}
    "x"
    (Vtuple [ Vchar 'e'; Vchar '?' ])

let () =
  Alcotest.run "strings"
    [
      ( "values",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "operations" `Quick test_operations;
          Alcotest.test_case "patterns" `Quick test_string_patterns;
        ] );
      ( "indexed lengths",
        [
          Alcotest.test_case "singleton lengths" `Quick test_singleton_lengths;
          Alcotest.test_case "string search (KMP)" `Quick test_string_search;
          Alcotest.test_case "subscript observable" `Quick test_subscript_observable;
        ] );
    ]
