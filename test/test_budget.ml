(* Resource-governed solving and graceful degradation: budget exhaustion
   yields Timeout (never a hang), the escalation ladder proves goals the
   first method alone cannot, and degraded compilation keeps a dynamic
   check at exactly the unproven sites. *)

open Dml_index
open Dml_constr
open Dml_solver
open Dml_core
open Dml_eval
open Idx

let v = Ivar.fresh
let eq a b = Bcmp (Req, a, b)
let le a b = Bcmp (Rle, a, b)
let goal vars hyps concl = { Constr.goal_vars = vars; goal_hyps = hyps; goal_concl = concl }

let is_timeout = function Solver.Timeout _ -> true | _ -> false

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* k hypotheses of the form [x = i \/ x = i + k]: the negation formula's DNF
   has 2^k disjuncts, far past any reasonable fuel allowance. *)
let dnf_blowup_goal k =
  let x = v "x" in
  let hyps = List.init k (fun i -> Bor (eq (Ivar x) (Iconst i), eq (Ivar x) (Iconst (i + k)))) in
  goal [ (x, Sint) ] hyps (le (Ivar x) (Iconst (-1)))

(* A dense difference system over n variables: Fourier elimination keeps
   combining upper and lower bounds pair by pair. *)
let fourier_dense_goal n =
  let xs = Array.init n (fun i -> v (Printf.sprintf "x%d" i)) in
  let hyps = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        hyps :=
          le (Isub (Ivar xs.(i), Ivar xs.(j))) (Iconst ((i * j) mod 7))
          :: !hyps
    done
  done;
  goal
    (Array.to_list (Array.map (fun x -> (x, Sint)) xs))
    !hyps
    (le (Ivar xs.(0)) (Iconst (-100)))

let test_fuel_timeout () =
  let t0 = Budget.now () in
  let budget = Budget.create ~fuel:200 () in
  let verdict = Solver.check_goal ~budget (dnf_blowup_goal 18) in
  let elapsed = Budget.now () -. t0 in
  Alcotest.(check bool)
    (Format.asprintf "fuel-bounded DNF blowup times out (got %a)" Solver.pp_verdict verdict)
    true (is_timeout verdict);
  Alcotest.(check bool) "returns promptly" true (elapsed < 10.)

let test_deadline_timeout () =
  (* an already-expired deadline: the first poll raises, whatever the goal *)
  let budget = Budget.create ~timeout_ms:0 () in
  let verdict = Solver.check_goal ~budget (fourier_dense_goal 8) in
  Alcotest.(check bool)
    (Format.asprintf "expired deadline times out (got %a)" Solver.pp_verdict verdict)
    true (is_timeout verdict);
  match verdict with
  | Solver.Timeout msg ->
      Alcotest.(check bool) "mentions the deadline" true
        (String.length msg > 0 && String.lowercase_ascii msg = "deadline exceeded")
  | _ -> ()

let test_elimination_limit () =
  let budget = Budget.create ~max_eliminations:1 () in
  let verdict = Solver.check_goal ~budget (fourier_dense_goal 6) in
  Alcotest.(check bool)
    (Format.asprintf "elimination-bounded solve times out (got %a)" Solver.pp_verdict verdict)
    true (is_timeout verdict)

let test_unbudgeted_still_works () =
  (* without a budget the blowup is cut off by the DNF size cap, reported as
     Unsupported — and small goals are entirely unaffected *)
  (match Solver.check_goal (dnf_blowup_goal 18) with
  | Solver.Unsupported _ | Solver.Timeout _ -> ()
  | other -> Alcotest.failf "expected a cutoff, got %a" Solver.pp_verdict other);
  let n = v "n" in
  match
    Solver.check_goal ~budget:(Budget.unlimited ())
      (goal [ (n, Sint) ] [ Bcmp (Rge, Ivar n, Iconst 3) ] (Bcmp (Rge, Ivar n, Iconst 1)))
  with
  | Solver.Valid -> ()
  | other -> Alcotest.failf "unlimited budget broke a tautology: %a" Solver.pp_verdict other

(* --- escalation ladder --------------------------------------------------- *)

let test_escalation_ladder () =
  (* bcopy needs the integral tightening rule: plain FM alone leaves
     obligations unproven, but the ladder escalates past it *)
  let run escalate =
    let config =
      { Pipeline.default_config with Pipeline.sc_method = Solver.Fm_plain;
        sc_escalate = escalate }
    in
    match Pipeline.check_s (Session.create ~options:{ Session.default_options with Session.op_solve = config } ()) Dml_programs.Sources.bcopy with
    | Ok r -> r
    | Error f -> Alcotest.failf "bcopy: %s" (Pipeline.failure_to_string f)
  in
  let plain = run false in
  Alcotest.(check bool) "plain FM leaves residue" false plain.Pipeline.rp_valid;
  let escalated = run true in
  Alcotest.(check bool) "escalation proves bcopy" true escalated.Pipeline.rp_valid;
  Alcotest.(check bool) "escalations counted" true
    (escalated.Pipeline.rp_solver_stats.Solver.escalations > 0)

let test_escalation_under_budget () =
  (* escalation still respects the budget: with an expired deadline every
     rung reports Timeout, and the ladder's best verdict is Timeout *)
  let stats = Solver.new_stats () in
  let budget = Budget.create ~timeout_ms:0 () in
  let verdict = Solver.check_goal_escalating ~stats ~budget (fourier_dense_goal 8) in
  Alcotest.(check bool)
    (Format.asprintf "budget governs the whole ladder (got %a)" Solver.pp_verdict verdict)
    true (is_timeout verdict)

(* --- per-obligation isolation through the pipeline ----------------------- *)

let test_pipeline_budget_isolation () =
  (* zero fuel: obligations that need any solving work time out, each under
     its own budget; the pipeline still classifies every obligation *)
  let config = { Pipeline.default_config with Pipeline.sc_fuel = Some 0 } in
  match Pipeline.check_s (Session.create ~options:{ Session.default_options with Session.op_solve = config } ()) Dml_programs.Sources.bsearch with
  | Error f -> Alcotest.failf "bsearch: %s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "not fully valid under zero fuel" false r.Pipeline.rp_valid;
      Alcotest.(check bool) "timeouts observed" true (r.Pipeline.rp_timeouts > 0);
      Alcotest.(check int) "residual = unproven" r.Pipeline.rp_residual
        (List.length (Pipeline.unproven r));
      Alcotest.(check int) "every obligation got a verdict" r.Pipeline.rp_constraints
        (List.length r.Pipeline.rp_obligations)

(* --- graceful degradation ------------------------------------------------ *)

let partial_src =
  {|
fun get(a, i) = sub(a, i)
where get <| int array * int -> int

val a = array(4, 7)
val ok = get(a, 2)
val safe = sub(a, 1)
val caught = (get(a, 9) handle Subscript => ~1)
|}

let partial_report () =
  match Pipeline.check_s (Session.create ()) partial_src with
  | Error f -> Alcotest.failf "partial program: %s" (Pipeline.failure_to_string f)
  | Ok r -> r

let test_degraded_sites () =
  let r = partial_report () in
  Alcotest.(check bool) "has residue" false r.Pipeline.rp_valid;
  Alcotest.(check int) "exactly one unproven site" 1 r.Pipeline.rp_residual;
  let pred = Pipeline.degraded_pred r in
  Alcotest.(check int) "one degraded location" 1
    (List.length (Pipeline.degraded_sites r));
  List.iter
    (fun loc -> Alcotest.(check bool) "pred matches its own sites" true (pred loc))
    (Pipeline.degraded_sites r)

let test_degraded_compile () =
  let r = partial_report () in
  let counters = Prims.new_counters () in
  let degraded = Pipeline.degraded_pred r in
  let ce = Compile.initial_fast Prims.Unchecked ~counters ~degraded () in
  let ce = Compile.run_program ce r.Pipeline.rp_tprog in
  (* values are right, including the out-of-bounds call at the degraded
     site, which the residual check turns into Subscript *)
  Alcotest.(check bool) "ok = 7" true (Compile.lookup ce "ok" = Value.Vint 7);
  Alcotest.(check bool) "safe = 7" true (Compile.lookup ce "safe" = Value.Vint 7);
  Alcotest.(check bool) "caught = -1" true (Compile.lookup ce "caught" = Value.Vint (-1));
  (* get ran twice through its checked sub; safe's proven sub stayed
     unchecked *)
  Alcotest.(check int) "residual checks executed" 2 counters.Prims.dynamic_checks;
  Alcotest.(check bool) "proven accesses uncounted" true
    (counters.Prims.eliminated_checks >= 1)

let test_degraded_cost_model () =
  let r = partial_report () in
  let counters = Prims.new_counters () in
  let degraded = Pipeline.degraded_pred r in
  let env = Cycles.initial_env ~degraded Prims.Unchecked counters in
  let env = Cycles.run_program env r.Pipeline.rp_tprog in
  Alcotest.(check bool) "ok = 7" true (Cycles.lookup env "ok" = Value.Vint 7);
  Alcotest.(check bool) "caught = -1" true (Cycles.lookup env "caught" = Value.Vint (-1));
  Alcotest.(check int) "residual checks counted" 2 counters.Prims.dynamic_checks;
  Alcotest.(check bool) "residual checks cost cycles" true (counters.Prims.cycles > 0)

let test_fully_proven_unaffected () =
  (* a fully proven program has no degraded site: the predicate is constant
     false and unchecked compilation behaves exactly as before *)
  match Pipeline.check_s (Session.create ()) Dml_programs.Sources.bcopy with
  | Error f -> Alcotest.failf "bcopy: %s" (Pipeline.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "bcopy proves" true r.Pipeline.rp_valid;
      Alcotest.(check int) "no degraded sites" 0 (List.length (Pipeline.degraded_sites r));
      let counters = Prims.new_counters () in
      let ce = Compile.initial_fast Prims.Unchecked ~counters ~degraded:(Pipeline.degraded_pred r) () in
      let _ce = Compile.run_program ce r.Pipeline.rp_tprog in
      Alcotest.(check int) "no dynamic checks in program body" 0
        counters.Prims.dynamic_checks

(* --- diagnostics rendering edge cases ------------------------------------ *)

let mkloc (l1, c1) (l2, c2) =
  Dml_lang.Loc.make { Dml_lang.Loc.line = l1; col = c1 } { Dml_lang.Loc.line = l2; col = c2 }

let test_excerpt_edges () =
  let src = "val x = 1\nval yy = 22\n" in
  let render loc =
    Diagnose.render_failure ~src
      { Pipeline.f_stage = `Parse; f_msg = "m"; f_loc = loc }
  in
  (* column beyond the end of the line: the caret row must not raise and must
     stay within one character past the text *)
  let r = render (mkloc (1, 50) (1, 60)) in
  Alcotest.(check bool) "past-eol renders" true (String.length r > 0);
  List.iter
    (fun line ->
      if String.length line >= 8 && String.sub line 0 8 = "       |" then
        Alcotest.(check bool) "caret row within line" true (String.length line <= 9 + 10))
    (String.split_on_char '\n' r);
  (* multi-line span: renders both lines, underlining the first *)
  let r = render (mkloc (1, 5) (2, 3)) in
  Alcotest.(check bool) "multi-line renders" true (String.length r > 0);
  Alcotest.(check bool) "second line shown" true
    (contains r "val yy");
  (* line beyond the file and the dummy location degrade to no excerpt *)
  ignore (render (mkloc (99, 1) (99, 2)));
  ignore (render Dml_lang.Loc.dummy);
  (* empty line under the caret *)
  let src2 = "\n\n" in
  ignore
    (Diagnose.render_failure ~src:src2
       { Pipeline.f_stage = `Parse; f_msg = "m"; f_loc = mkloc (1, 1) (1, 1) })

let test_degradation_rendering () =
  let r = partial_report () in
  let s = Diagnose.render_degradation ~src:partial_src r in
  Alcotest.(check bool) "names the unproven site" true
    (contains s "bound check for sub");
  Alcotest.(check bool) "says why" true
    (contains s "refuted or unprovable")

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "fuel exhaustion times out" `Quick test_fuel_timeout;
          Alcotest.test_case "expired deadline times out" `Quick test_deadline_timeout;
          Alcotest.test_case "elimination limit times out" `Quick test_elimination_limit;
          Alcotest.test_case "unbudgeted behaviour unchanged" `Quick test_unbudgeted_still_works;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "ladder proves bcopy from fm-plain" `Quick test_escalation_ladder;
          Alcotest.test_case "ladder respects the budget" `Quick test_escalation_under_budget;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "per-obligation isolation" `Quick test_pipeline_budget_isolation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "degraded sites identified" `Quick test_degraded_sites;
          Alcotest.test_case "degraded compile is correct" `Quick test_degraded_compile;
          Alcotest.test_case "degraded cost model counts" `Quick test_degraded_cost_model;
          Alcotest.test_case "fully proven unaffected" `Quick test_fully_proven_unaffected;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "excerpt edge cases" `Quick test_excerpt_edges;
          Alcotest.test_case "degradation report" `Quick test_degradation_rendering;
        ] );
    ]
