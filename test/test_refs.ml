(* References: SML's imperative core.  The interesting type-system point is
   the value restriction (Section 2.2 mentions "polymorphism (with a value
   restriction)"), which is exactly what keeps [ref nil] from being used at
   two element types. *)

open Dml_core
open Dml_eval
open Value

let typecheck name src =
  match Pipeline.check_valid_s (Session.create ()) src with
  | Ok r -> r.Pipeline.rp_tprog
  | Error msg -> Alcotest.failf "%s: %s" name msg

let run_compiled tprog name =
  let ce = Compile.initial_fast Prims.Checked () in
  Compile.lookup (Compile.run_program ce tprog) name

let run_interp tprog name =
  let env = Interp.initial_env (Prims.table Prims.Checked ()) in
  Interp.lookup (Interp.run_program env tprog) name

let value = Alcotest.testable Value.pp Value.equal

let both name src binding expected =
  let tprog = typecheck name src in
  Alcotest.check value (name ^ " (compiled)") expected (run_compiled tprog binding);
  Alcotest.check value (name ^ " (interp)") expected (run_interp tprog binding)

let test_basic () =
  both "create, read, write" {|
val r = ref 1
val x = (r := 41; !r + 1)
|} "x" (Vint 42);
  both "aliasing" {|
val r = ref 0
val s = r
val x = (s := 7; !r)
|} "x" (Vint 7);
  both "ref of tuple"
    {|
val r = ref (1, true)
val x = (r := (2, false); !r)
|}
    "x"
    (Vtuple [ Vint 2; Vbool false ])

let test_closures_over_state () =
  both "counter"
    {|
fun counter() = let
  val c = ref 0
in
  fn () => (c := !c + 1; !c)
end
val tick = counter()
val other = counter()
val x = (tick(), tick(), other(), tick())
|}
    "x"
    (Vtuple [ Vint 1; Vint 2; Vint 1; Vint 3 ])

let test_imperative_loop () =
  both "imperative sum via ref"
    {|
fun sumto(n) = let
  val acc = ref 0
  fun loop(i) = if i <= n then (acc := !acc + i; loop(i + 1)) else ()
in
  (loop(1); !acc)
end
val x = sumto(100)
|}
    "x" (Vint 5050)

let test_value_restriction_refs () =
  (* ref nil must not generalise: using it at two element types is an error *)
  match
    Pipeline.check_s (Session.create ())
      {|
val cell = ref nil
val a = (cell := 1 :: nil; !cell)
val b = (cell := true :: nil; !cell)
|}
  with
  | Error { Pipeline.f_stage = `Mltype; _ } -> ()
  | Error f -> Alcotest.failf "wrong stage: %s" (Pipeline.failure_to_string f)
  | Ok _ -> Alcotest.fail "value restriction violated"

let test_monomorphic_cell_is_fine () =
  both "monomorphic cell"
    {|
val cell = ref nil
val x = (cell := 1 :: 2 :: nil; list_length (!cell))
|}
    "x" (Vint 2)

let test_refs_and_dependent_arrays () =
  (* a ref holding an index into an array: the index loses its static
     information through the cell, so sub must be guarded *)
  both "guarded access through a ref"
    {|
val a = array(10, 3)
val idx = ref 0
fun bump() = idx := !idx + 1
val x = let
  val i = !idx
in
  (bump(); if 0 <= i andalso i < length a then sub(a, i) else ~1)
end
|}
    "x" (Vint 3);
  (* without the guard it must be rejected *)
  match Pipeline.check_s (Session.create ()) {|
val a = array(10, 3)
val idx = ref 0
val x = sub(a, !idx)
|} with
  | Ok r when not r.Pipeline.rp_valid -> ()
  | Ok _ -> Alcotest.fail "unguarded access through a ref accepted"
  | Error f -> Alcotest.failf "unexpected: %s" (Pipeline.failure_to_string f)

let () =
  Alcotest.run "refs"
    [
      ( "semantics",
        [
          Alcotest.test_case "basics" `Quick test_basic;
          Alcotest.test_case "closures over state" `Quick test_closures_over_state;
          Alcotest.test_case "imperative loop" `Quick test_imperative_loop;
        ] );
      ( "typing",
        [
          Alcotest.test_case "value restriction" `Quick test_value_restriction_refs;
          Alcotest.test_case "monomorphic cell" `Quick test_monomorphic_cell_is_fine;
          Alcotest.test_case "refs and dependent arrays" `Quick test_refs_and_dependent_arrays;
        ] );
    ]
