open Dml_index
open Dml_constr
open Dml_solver
open Idx

let v = Ivar.fresh

let eq a b = Bcmp (Req, a, b)
let le a b = Bcmp (Rle, a, b)
let lt a b = Bcmp (Rlt, a, b)
let ge a b = Bcmp (Rge, a, b)

let goal vars hyps concl = { Constr.goal_vars = vars; goal_hyps = hyps; goal_concl = concl }

let check_valid ?method_ name g =
  match Solver.check_goal ?method_ g with
  | Solver.Valid -> ()
  | other -> Alcotest.failf "%s: %a" name Solver.pp_verdict other

let check_not_valid ?method_ name g =
  match Solver.check_goal ?method_ g with
  | Solver.Valid -> Alcotest.failf "%s: unexpectedly valid" name
  | Solver.Not_valid _ -> ()
  | other -> Alcotest.failf "%s: %a" name Solver.pp_verdict other

(* --- basic validity ----------------------------------------------------- *)

let test_tautologies () =
  let n = v "n" and m = v "m" in
  check_valid "0 + n = n" (goal [ (n, Sint) ] [] (eq (Iadd (Iconst 0, Ivar n)) (Ivar n)));
  check_valid "(m+1)+n = m+(n+1)"
    (goal
       [ (m, Sint); (n, Sint) ]
       []
       (eq (Iadd (Iadd (Ivar m, Iconst 1), Ivar n)) (Iadd (Ivar m, Iadd (Ivar n, Iconst 1)))));
  check_valid "n <= n" (goal [ (n, Sint) ] [] (le (Ivar n) (Ivar n)));
  check_valid "hyps imply" (goal [ (n, Sint) ] [ ge (Ivar n) (Iconst 3) ] (ge (Ivar n) (Iconst 1)))

let test_invalid () =
  let n = v "n" in
  check_not_valid "n <= 5" (goal [ (n, Sint) ] [] (le (Ivar n) (Iconst 5)));
  check_not_valid "n >= 0 unhyp" (goal [ (n, Sint) ] [] (ge (Ivar n) (Iconst 0)));
  check_not_valid "contradictory-looking"
    (goal [ (n, Sint) ] [ ge (Ivar n) (Iconst 0) ] (lt (Ivar n) (Iconst 100)))

let test_counterexample_hint () =
  let n = v "n" in
  match Solver.check_goal (goal [ (n, Sint) ] [ ge (Ivar n) (Iconst 10) ] (le (Ivar n) (Iconst 20))) with
  | Solver.Not_valid hint ->
      Alcotest.(check bool) "mentions counterexample" true
        (String.length hint > 0
        && String.sub hint 0 (Stdlib.min 14 (String.length hint)) = "counterexample")
  | other -> Alcotest.failf "expected Not_valid, got %a" Solver.pp_verdict other

(* --- disjunction, negation, booleans ------------------------------------ *)

let test_boolean_structure () =
  let n = v "n" in
  check_valid "case split"
    (goal
       [ (n, Sint) ]
       [ Bor (le (Ivar n) (Iconst 0), ge (Ivar n) (Iconst 1)) ]
       (Bor (le (Ivar n) (Iconst 0), ge (Ivar n) (Iconst 1))));
  check_valid "ne as or"
    (goal [ (n, Sint) ]
       [ Bcmp (Rne, Ivar n, Iconst 0) ]
       (Bor (le (Ivar n) (Iconst (-1)), ge (Ivar n) (Iconst 1))));
  let b = v "b" in
  check_valid "bool var tautology" (goal [ (b, Sbool) ] [] (Bor (Bvar b, Bnot (Bvar b))));
  check_not_valid "bool var alone" (goal [ (b, Sbool) ] [] (Bvar b));
  check_valid "bool contradiction hyp"
    (goal [ (b, Sbool) ] [ Bvar b; Bnot (Bvar b) ] (Bconst false))

(* --- trichotomy and integrality ----------------------------------------- *)

let test_integrality () =
  let n = v "n" in
  (* over the integers, n > 0 /\ n < 1 is unsat: 1 <= n <= 0 *)
  check_valid "no integer strictly between"
    (goal [ (n, Sint) ] [ Bcmp (Rgt, Ivar n, Iconst 0) ] (ge (Ivar n) (Iconst 1)));
  (* 2n = 1 has no integer solution: hyp is false, anything follows *)
  check_valid "odd/even"
    (goal [ (n, Sint) ] [ eq (Imul (Iconst 2, Ivar n)) (Iconst 1) ] (Bconst false));
  (* 3n = 6 => n = 2 needs the gcd normalisation on equalities *)
  check_valid "divide equality"
    (goal [ (n, Sint) ] [ eq (Imul (Iconst 3, Ivar n)) (Iconst 6) ] (eq (Ivar n) (Iconst 2)))

let test_tightening_ablation () =
  let n = v "n" in
  (* 3 <= 2n <= 3 has no integer solution but a rational one (n = 3/2);
     the tightened FM refutes it, the rational methods cannot. *)
  let g =
    goal [ (n, Sint) ]
      [ le (Iconst 3) (Imul (Iconst 2, Ivar n)); le (Imul (Iconst 2, Ivar n)) (Iconst 3) ]
      (Bconst false)
  in
  check_valid ~method_:Solver.Fm_tightened "tightened refutes" g;
  check_not_valid ~method_:Solver.Simplex_rational "simplex cannot" g

(* --- non-affine operators ------------------------------------------------ *)

let test_div () =
  let h = v "h" and l = v "l" and size = v "size" in
  (* binary search invariant: the paper's Figure 4, first constraint:
     0 <= h+1 <= size /\ 0 <= l <= size /\ h >= l
     implies l + (h - l) div 2 + 1 <= size *)
  let m = Iadd (Ivar l, Idiv (Isub (Ivar h, Ivar l), Iconst 2)) in
  let hyps =
    [
      le (Iconst 0) (Iadd (Ivar h, Iconst 1));
      le (Iadd (Ivar h, Iconst 1)) (Ivar size);
      le (Iconst 0) (Ivar l);
      le (Ivar l) (Ivar size);
      ge (Ivar h) (Ivar l);
    ]
  in
  let ctx = [ (h, Sint); (l, Sint); (size, Sint) ] in
  check_valid "bsearch mid upper" (goal ctx hyps (lt m (Ivar size)));
  check_valid "bsearch mid lower" (goal ctx hyps (ge m (Iconst 0)));
  check_valid "bsearch mid+1 lower" (goal ctx hyps (ge (Iadd (m, Iconst 1)) (Iconst 0)));
  check_valid "bsearch mid-1+1 nonneg" (goal ctx hyps (ge (Iadd (m, Iconst 0)) (Ivar l)));
  (* and an invalid one: m < l is not implied *)
  check_not_valid "mid below lower bound" (goal ctx hyps (lt m (Ivar l)))

let test_min_max_abs_sgn_mod () =
  let a = v "a" and b = v "b" in
  let ctx = [ (a, Sint); (b, Sint) ] in
  check_valid "min <= a" (goal ctx [] (le (Imin (Ivar a, Ivar b)) (Ivar a)));
  check_valid "min is one of" (goal ctx []
     (Bor (eq (Imin (Ivar a, Ivar b)) (Ivar a), eq (Imin (Ivar a, Ivar b)) (Ivar b))));
  check_valid "max >= b" (goal ctx [] (ge (Imax (Ivar a, Ivar b)) (Ivar b)));
  check_valid "abs nonneg" (goal ctx [] (ge (Iabs (Ivar a)) (Iconst 0)));
  check_valid "abs upper" (goal ctx [] (le (Ivar a) (Iabs (Ivar a))));
  check_not_valid "abs not strict" (goal ctx [] (Bcmp (Rgt, Iabs (Ivar a), Iconst 0)));
  check_valid "sgn range"
    (goal ctx []
       (Band (le (Iconst (-1)) (Isgn (Ivar a)), le (Isgn (Ivar a)) (Iconst 1))));
  check_valid "mod bound"
    (goal ctx []
       (Band
          ( le (Iconst 0) (Imod (Ivar a, Iconst 5)),
            le (Imod (Ivar a, Iconst 5)) (Iconst 4) )));
  check_valid "mod decomposition"
    (goal ctx []
       (eq (Ivar a) (Iadd (Imul (Iconst 5, Idiv (Ivar a, Iconst 5)), Imod (Ivar a, Iconst 5)))))

let test_nonlinear_rejected () =
  let a = v "a" and b = v "b" in
  match
    Solver.check_goal (goal [ (a, Sint); (b, Sint) ] [] (ge (Imul (Ivar a, Ivar b)) (Iconst 0)))
  with
  | Solver.Unsupported _ -> ()
  | other -> Alcotest.failf "expected Unsupported, got %a" Solver.pp_verdict other

(* --- Figure 4: all five sample constraints from binary search ------------ *)

let test_figure4 () =
  let h = v "h" and l = v "l" and size = v "size" in
  let ctx = [ (h, Sint); (l, nat); (size, nat) ] in
  let hyps =
    [
      le (Iconst 0) (Iadd (Ivar h, Iconst 1));
      le (Iadd (Ivar h, Iconst 1)) (Ivar size);
      le (Iconst 0) (Ivar l);
      le (Ivar l) (Ivar size);
      ge (Ivar h) (Ivar l);
    ]
  in
  (* m = l + (h - l) div 2 *)
  let m = Iadd (Ivar l, Idiv (Isub (Ivar h, Ivar l), Iconst 2)) in
  (* 1: l + (h-l)/2 < size  (array access at m) *)
  check_valid "fig4 c1" (goal ctx hyps (lt m (Ivar size)));
  (* 2: 0 <= l + (h-l)/2 - 1 + 1  (the recursive call look(lo, m-1)) *)
  check_valid "fig4 c2" (goal ctx hyps (ge (Iadd (Isub (m, Iconst 1), Iconst 1)) (Iconst 0)));
  (* 3: l + (h-l)/2 - 1 + 1 <= size *)
  check_valid "fig4 c3" (goal ctx hyps (le (Iadd (Isub (m, Iconst 1), Iconst 1)) (Ivar size)));
  (* 4: 0 <= l + (h-l)/2 + 1  (the recursive call look(m+1, hi)) *)
  check_valid "fig4 c4" (goal ctx hyps (ge (Iadd (m, Iconst 1)) (Iconst 0)));
  (* 5: l + (h-l)/2 + 1 <= size *)
  check_valid "fig4 c5" (goal ctx hyps (le (Iadd (m, Iconst 1)) (Ivar size)))

(* --- Fourier internals ---------------------------------------------------- *)

let test_fourier_direct () =
  let x = v "x" and y = v "y" in
  let f_x = Linear.var x and f_y = Linear.var y in
  (* x <= 3, y <= 4, -(x + y) + 8 <= 0 i.e. x + y >= 8: unsat *)
  let sys =
    [
      Linear.cstr_le (Linear.sub f_x (Linear.of_int 3));
      Linear.cstr_le (Linear.sub f_y (Linear.of_int 4));
      Linear.cstr_le (Linear.add (Linear.neg (Linear.add f_x f_y)) (Linear.of_int 8));
    ]
  in
  Alcotest.(check bool) "unsat" true (Fourier.check ~tighten:true sys = Fourier.Unsat);
  Alcotest.(check bool) "simplex agrees" true (Simplex.check sys = Simplex.Unsat);
  (* drop the last constraint: sat, and the model must verify *)
  let sys' = [ List.nth sys 0; List.nth sys 1 ] in
  Alcotest.(check bool) "sat" true (Fourier.check ~tighten:true sys' = Fourier.Sat);
  (match Fourier.rational_model sys' with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a model");
  Alcotest.(check bool) "simplex sat" true (Simplex.check sys' = Simplex.Sat)

let test_gauss_substitution () =
  let x = v "x" and y = v "y" and z = v "z" in
  (* x = y + 1, y = z + 1, x <= z: unsat (x = z + 2 > z) *)
  let f v = Linear.var v in
  let sys =
    [
      Linear.cstr_eq (Linear.sub (f x) (Linear.add (f y) (Linear.of_int 1)));
      Linear.cstr_eq (Linear.sub (f y) (Linear.add (f z) (Linear.of_int 1)));
      Linear.cstr_le (Linear.sub (f x) (f z));
    ]
  in
  let stats = Fourier.new_stats () in
  Alcotest.(check bool) "unsat" true (Fourier.check ~stats ~tighten:true sys = Fourier.Unsat);
  (* Gaussian elimination should leave no variables for the FM phase *)
  Alcotest.(check int) "no FM eliminations needed" 0 stats.Fourier.eliminations

(* --- property: FM verdict agrees with brute force on small systems -------- *)

let prop_fm_vs_bruteforce =
  let x = v "x" and y = v "y" in
  let gen =
    QCheck.make
      ~print:(fun cs ->
        String.concat "; "
          (List.map (fun (a, b, c) -> Printf.sprintf "%dx+%dy+%d<=0" a b c) cs))
      QCheck.Gen.(
        list_size (int_range 1 5)
          (triple (int_range (-4) 4) (int_range (-4) 4) (int_range (-6) 6)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"FM agrees with brute force" gen (fun cs ->
         let sys =
           List.map
             (fun (a, b, c) ->
               Linear.cstr_le
                 (Linear.add
                    (Linear.add
                       (Linear.scale (Dml_numeric.Bigint.of_int a) (Linear.var x))
                       (Linear.scale (Dml_numeric.Bigint.of_int b) (Linear.var y)))
                    (Linear.of_int c)))
             cs
         in
         let brute_sat =
           (* Search the half-integer grid x = xi/2, y = yi/2 with
              xi, yi in [-24, 24]; each constraint becomes
              a*xi + b*yi + 2c <= 0. *)
           let vals = List.init 49 (fun i -> i - 24) in
           List.exists
             (fun xi ->
               List.exists
                 (fun yi ->
                   List.for_all (fun (a, b, c) -> (a * xi) + (b * yi) + (2 * c) <= 0) cs)
                 vals)
             vals
         in
         let fm_sat = Fourier.check ~tighten:false sys = Fourier.Sat in
         (* brute force searches half-integer grid: x = xi/2.  If brute force
            finds a solution, FM must report Sat.  (The converse does not hold
            on a bounded grid.) *)
         (not brute_sat) || fm_sat))

let prop_fm_simplex_agree =
  let x = v "x" and y = v "y" and z = v "z" in
  let gen =
    QCheck.make
      ~print:(fun cs ->
        String.concat "; "
          (List.map (fun (a, b, c, d) -> Printf.sprintf "%dx+%dy+%dz+%d<=0" a b c d) cs))
      QCheck.Gen.(
        list_size (int_range 1 6)
          (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3) (int_range (-8) 8)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"plain FM and simplex agree (rational)" gen (fun cs ->
         let sys =
           List.map
             (fun (a, b, c, d) ->
               let open Linear in
               cstr_le
                 (add
                    (add
                       (add
                          (scale (Dml_numeric.Bigint.of_int a) (var x))
                          (scale (Dml_numeric.Bigint.of_int b) (var y)))
                       (scale (Dml_numeric.Bigint.of_int c) (var z)))
                    (of_int d)))
             cs
         in
         (* Both are exact over the rationals for pure inequality systems. *)
         (Fourier.check ~tighten:false sys = Fourier.Unsat)
         = (Simplex.check sys = Simplex.Unsat)))

(* property: tightened FM never refutes a system with an integer solution *)
let prop_tighten_sound =
  let x = v "x" and y = v "y" in
  let gen =
    QCheck.make
      ~print:(fun cs ->
        String.concat "; "
          (List.map (fun (a, b, c) -> Printf.sprintf "%dx+%dy+%d<=0" a b c) cs))
      QCheck.Gen.(
        list_size (int_range 1 5)
          (triple (int_range (-5) 5) (int_range (-5) 5) (int_range (-9) 9)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"tightened FM is sound for integers" gen (fun cs ->
         let sys =
           List.map
             (fun (a, b, c) ->
               let open Linear in
               cstr_le
                 (add
                    (add
                       (scale (Dml_numeric.Bigint.of_int a) (var x))
                       (scale (Dml_numeric.Bigint.of_int b) (var y)))
                    (of_int c)))
             cs
         in
         let int_solution_exists =
           let vals = List.init 41 (fun i -> i - 20) in
           List.exists
             (fun xi ->
               List.exists
                 (fun yi ->
                   List.for_all (fun (a, b, c) -> (a * xi) + (b * yi) + c <= 0) cs)
                 vals)
             vals
         in
         (* soundness: a found integer solution implies FM must answer Sat *)
         (not int_solution_exists) || Fourier.check ~tighten:true sys = Fourier.Sat))

(* property: on single-variable systems with divisibility-style gaps, the
   tightened procedure decides integer satisfiability exactly *)
let prop_tighten_exact_1d =
  let x = v "x" in
  let gen =
    QCheck.make
      ~print:(fun (k, lo, hi) -> Printf.sprintf "%d <= %dx <= %d" lo k hi)
      QCheck.Gen.(triple (int_range 1 7) (int_range (-30) 30) (int_range (-30) 30))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"tightened FM exact on k*x in [lo,hi]" gen
       (fun (k, lo, hi) ->
         (* lo <= k*x /\ k*x <= hi *)
         let open Linear in
         let kx = scale (Dml_numeric.Bigint.of_int k) (var x) in
         let sys =
           [ cstr_le (sub (of_int lo) kx); cstr_le (add kx (of_int (-hi))) ]
         in
         let has_int_solution =
           (* exists x: lo <= kx <= hi  <=>  ceil(lo/k) <= floor(hi/k) *)
           let fdiv a b = (a - (((a mod b) + b) mod b)) / b in
           let ceil_div a b = -fdiv (-a) b in
           ceil_div lo k <= fdiv hi k
         in
         (Fourier.check ~tighten:true sys = Fourier.Sat) = has_int_solution))

(* end-to-end soundness across purify + DNF + FM: when the solver declares a
   goal Valid, the formula must hold on every point of a small integer box
   (this exercises the div/mod/min/max/abs encodings of Purify) *)
let prop_goal_soundness =
  let x = v "x" and y = v "y" in
  let gen =
    let open QCheck.Gen in
    let atom_i =
      oneof
        [
          return (Ivar x);
          return (Ivar y);
          map (fun c -> Iconst c) (int_range (-6) 6);
        ]
    in
    let iexp =
      oneof
        [
          atom_i;
          map2 (fun a b -> Iadd (a, b)) atom_i atom_i;
          map2 (fun a b -> Isub (a, b)) atom_i atom_i;
          map2 (fun a b -> Imin (a, b)) atom_i atom_i;
          map2 (fun a b -> Imax (a, b)) atom_i atom_i;
          map (fun a -> Iabs a) atom_i;
          map (fun a -> Isgn a) atom_i;
          map2 (fun a k -> Idiv (a, Iconst k)) atom_i (int_range 1 4);
          map2 (fun a k -> Imod (a, Iconst k)) atom_i (int_range 1 4);
        ]
    in
    let rel = oneofl [ Rlt; Rle; Req; Rne; Rge; Rgt ] in
    let atom_b = map3 (fun r a b -> Bcmp (r, a, b)) rel iexp iexp in
    let bexp =
      oneof
        [
          atom_b;
          map2 (fun a b -> Band (a, b)) atom_b atom_b;
          map2 (fun a b -> Bor (a, b)) atom_b atom_b;
          map (fun a -> Bnot a) atom_b;
        ]
    in
    QCheck.make
      ~print:(fun (hyps, concl) ->
        Printf.sprintf "%s |- %s"
          (String.concat " /\\ " (List.map bexp_to_string hyps))
          (bexp_to_string concl))
      QCheck.Gen.(pair (list_size (int_range 0 2) bexp) bexp)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"Valid goals hold pointwise" gen
       (fun (hyps, concl) ->
         let g = goal [ (x, Sint); (y, Sint) ] hyps concl in
         match Solver.check_goal g with
         | Solver.Not_valid _ | Solver.Unsupported _ | Solver.Timeout _ -> true
         | Solver.Valid ->
             (* check every point of the box *)
             let ok = ref true in
             for xi = -8 to 8 do
               for yi = -8 to 8 do
                 let env =
                   Ivar.Map.add x (Vint xi) (Ivar.Map.singleton y (Vint yi))
                 in
                 let holds b = eval_bexp env b in
                 if List.for_all holds hyps && not (holds concl) then ok := false
               done
             done;
             !ok))

let () =
  Alcotest.run "solver"
    [
      ( "validity",
        [
          Alcotest.test_case "tautologies" `Quick test_tautologies;
          Alcotest.test_case "invalid goals" `Quick test_invalid;
          Alcotest.test_case "counterexample hint" `Quick test_counterexample_hint;
          Alcotest.test_case "boolean structure" `Quick test_boolean_structure;
        ] );
      ( "integers",
        [
          Alcotest.test_case "integrality" `Quick test_integrality;
          Alcotest.test_case "tightening ablation" `Quick test_tightening_ablation;
        ] );
      ( "non-affine",
        [
          Alcotest.test_case "div (binary search)" `Quick test_div;
          Alcotest.test_case "min/max/abs/sgn/mod" `Quick test_min_max_abs_sgn_mod;
          Alcotest.test_case "nonlinear rejected" `Quick test_nonlinear_rejected;
          Alcotest.test_case "Figure 4 constraints" `Quick test_figure4;
        ] );
      ( "internals",
        [
          Alcotest.test_case "fourier direct" `Quick test_fourier_direct;
          Alcotest.test_case "gauss substitution" `Quick test_gauss_substitution;
        ] );
      ( "properties",
        [
          prop_fm_vs_bruteforce;
          prop_fm_simplex_agree;
          prop_tighten_sound;
          prop_tighten_exact_1d;
          prop_goal_soundness;
        ]
      );
    ]
