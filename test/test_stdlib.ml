(* The DML standard library (lib/programs/stdlib_dml.ml): type checks,
   every function agrees with its OCaml counterpart on random inputs, and
   invariant-breaking mutants are rejected. *)

open Dml_core
open Dml_eval
open Value

let report =
  lazy
    (match Pipeline.check_valid_s (Session.create ()) Dml_programs.Stdlib_dml.source with
    | Ok r -> r
    | Error msg -> Alcotest.failf "stdlib: %s" msg)

let env =
  lazy
    (let r = Lazy.force report in
     let ce = Compile.initial_fast Prims.Unchecked () in
     Compile.run_program ce r.Pipeline.rp_tprog)

let fn name = Compile.lookup (Lazy.force env) name
let call = as_fun
let call2 f a b = as_fun (as_fun f a) b
let value = Alcotest.testable Value.pp Value.equal

let rng = ref 11

let next bound =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod bound

let random_list n = List.init n (fun _ -> next 1000)

let test_typechecks () =
  let r = Lazy.force report in
  Alcotest.(check bool) "constraints generated" true (r.Pipeline.rp_constraints > 20)

let test_append () =
  for _ = 1 to 20 do
    let a = random_list (next 30) and b = random_list (next 30) in
    Alcotest.check value "append" (of_int_list (a @ b))
      (call (fn "append") (Vtuple [ of_int_list a; of_int_list b ]))
  done

let test_map () =
  let double = Vfun (fun v -> Vint (2 * as_int v)) in
  for _ = 1 to 20 do
    let a = random_list (next 40) in
    Alcotest.check value "map" (of_int_list (List.map (fun x -> 2 * x) a))
      (call2 (fn "map") double (of_int_list a))
  done

let test_zip_unzip () =
  for _ = 1 to 20 do
    let n = next 30 in
    let a = random_list n and b = random_list n in
    let zipped = call (fn "zip") (Vtuple [ of_int_list a; of_int_list b ]) in
    let unzipped = call (fn "unzip") zipped in
    Alcotest.check value "unzip (zip a b) = (a, b)"
      (Vtuple [ of_int_list a; of_int_list b ])
      unzipped
  done

let take_ocaml l i = List.filteri (fun j _ -> j < i) l
let drop_ocaml l i = List.filteri (fun j _ -> j >= i) l

let test_take_drop () =
  for _ = 1 to 20 do
    let n = next 30 in
    let a = random_list n in
    let i = if n = 0 then 0 else next (n + 1) in
    Alcotest.check value "take" (of_int_list (take_ocaml a i))
      (call (fn "take") (Vtuple [ of_int_list a; Vint i ]));
    Alcotest.check value "drop" (of_int_list (drop_ocaml a i))
      (call (fn "drop") (Vtuple [ of_int_list a; Vint i ]))
  done

let test_last () =
  Alcotest.check value "last" (Vint 3) (call (fn "last") (of_int_list [ 1; 2; 3 ]));
  Alcotest.check value "last singleton" (Vint 9) (call (fn "last") (of_int_list [ 9 ]))

let test_sorts () =
  List.iter
    (fun name ->
      for _ = 1 to 15 do
        let a = random_list (next 60) in
        Alcotest.check value name
          (of_int_list (List.sort compare a))
          (call (fn name) (of_int_list a))
      done)
    [ "isort"; "msort" ]

let test_merge () =
  for _ = 1 to 20 do
    let a = List.sort compare (random_list (next 30)) in
    let b = List.sort compare (random_list (next 30)) in
    Alcotest.check value "merge"
      (of_int_list (List.merge compare a b))
      (call (fn "merge") (Vtuple [ of_int_list a; of_int_list b ]))
  done

let test_split () =
  for _ = 1 to 20 do
    let n = next 40 in
    let a = random_list n in
    match call (fn "split") (of_int_list a) with
    | Vtuple [ l; r ] ->
        let l = to_int_list l and r = to_int_list r in
        Alcotest.(check int) "split lengths" n (List.length l + List.length r);
        Alcotest.(check (list int)) "split partition" (List.sort compare a)
          (List.sort compare (l @ r))
    | v -> Alcotest.failf "split: %s" (Value.to_string v)
  done

let test_array_utilities () =
  (* afill *)
  let a = of_int_array (Array.make 10 0) in
  ignore (call (fn "afill") (Vtuple [ a; Vint 7 ]));
  Alcotest.check value "afill" (of_int_array (Array.make 10 7)) a;
  (* amap *)
  let src = Array.init 12 (fun i -> i) in
  let dst = of_int_array (Array.make 12 0) in
  let inc = Vfun (fun v -> Vint (as_int v + 1)) in
  ignore (call (fn "amap") (Vtuple [ inc; of_int_array src; dst ]));
  Alcotest.check value "amap" (of_int_array (Array.map (fun x -> x + 1) src)) dst;
  (* afoldl *)
  let plus = Vfun (function Vtuple [ a; b ] -> Vint (as_int a + as_int b) | _ -> assert false) in
  let sum = call (fn "afoldl") (Vtuple [ plus; Vint 0; of_int_array src ]) in
  Alcotest.check value "afoldl" (Vint (Array.fold_left ( + ) 0 src)) sum;
  (* amax *)
  for _ = 1 to 10 do
    let n = 1 + next 30 in
    let data = Array.init n (fun _ -> next 10000) in
    Alcotest.check value "amax"
      (Vint (Array.fold_left max data.(0) data))
      (call (fn "amax") (of_int_array data))
  done;
  (* arev, odd and even lengths *)
  List.iter
    (fun n ->
      let data = Array.init n (fun i -> i * 3) in
      let v = of_int_array data in
      ignore (call (fn "arev") v);
      let expected = Array.init n (fun i -> data.(n - 1 - i)) in
      Alcotest.check value (Printf.sprintf "arev %d" n) (of_int_array expected) v)
    [ 0; 1; 2; 7; 8 ]

(* --- invariant-breaking mutants are rejected ---------------------------------- *)

let rejected name src =
  match Pipeline.check_s (Session.create ()) src with
  | Error _ -> ()
  | Ok r ->
      if r.Pipeline.rp_valid then Alcotest.failf "%s: mutant unexpectedly accepted" name

let test_mutants () =
  rejected "insert that drops elements"
    {|
fun insert(x, nil) = x :: nil
  | insert(x, y :: ys) = if x <= y then x :: ys else y :: insert(x, ys)
where insert <| {n:nat} int * int list(n) -> int list(n+1)
|};
  rejected "take that takes one extra"
    {|
fun take(nil, i) = nil
  | take(x :: xs, i) = if i = 0 then x :: nil else x :: take(xs, i - 1)
where take <| {n:nat} {i:nat | i <= n} 'a list(n) * int(i) -> 'a list(i)
|};
  rejected "merge that forgets a side"
    {|
fun merge(nil, ys) = ys
  | merge(xs, nil) = nil
  | merge(x :: xs, y :: ys) =
      if x <= y then x :: merge(xs, y :: ys) else y :: merge(x :: xs, ys)
where merge <| {m:nat} {n:nat} int list(m) * int list(n) -> int list(m+n)
|};
  rejected "arev reading past the end"
    {|
fun arev(a) = let
  val half = length a div 2
  fun loop(i) =
    if i < half then
      let val t = sub(a, i) in
        (update(a, i, sub(a, length a - i));
         update(a, length a - i, t);
         loop(i + 1))
      end
    else ()
  where loop <| {i:nat} int(i) -> unit
in
  loop(0)
end
where arev <| {n:nat} int array(n) -> unit
|};
  rejected "amax on possibly-empty array"
    {|
fun amax(a) = let
  fun loop(i, m, best) =
    if i < m then
      (if sub(a, i) > best then loop(i + 1, m, sub(a, i)) else loop(i + 1, m, best))
    else best
  where loop <| {i:nat | i > 0} int(i) * int(n) * int -> int
in
  loop(1, length a, sub(a, 0))
end
where amax <| {n:nat} int array(n) -> int
|}

let () =
  Alcotest.run "stdlib"
    [
      ( "lists",
        [
          Alcotest.test_case "typechecks" `Quick test_typechecks;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "zip/unzip" `Quick test_zip_unzip;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "last" `Quick test_last;
          Alcotest.test_case "insertion and merge sort" `Quick test_sorts;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ("arrays", [ Alcotest.test_case "afill/amap/afoldl/amax/arev" `Quick test_array_utilities ]);
      ("mutants", [ Alcotest.test_case "rejected" `Quick test_mutants ]);
    ]
