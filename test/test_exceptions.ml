(* Exceptions: the paper's first "future work" item ("Our immediate goal is
   to extend our system to accommodate full Standard ML which involves
   treating exceptions...").  Declarations, raise, handle, propagation, and
   the interplay with the checked access discipline: a bound-check failure
   raises Subscript, which handle can observe in-language. *)

open Dml_core
open Dml_eval
open Value

let typecheck name src =
  match Pipeline.check_valid_s (Session.create ()) src with
  | Ok r -> r.Pipeline.rp_tprog
  | Error msg -> Alcotest.failf "%s: %s" name msg

type backend = { b_name : string; run : Prims.mode -> Dml_mltype.Tast.tprogram -> string -> Value.t }

let backends =
  [
    {
      b_name = "interp";
      run =
        (fun mode tprog name ->
          let env = Interp.initial_env (Prims.table mode ()) in
          Interp.lookup (Interp.run_program env tprog) name);
    };
    {
      b_name = "compiled";
      run =
        (fun mode tprog name ->
          let ce = Compile.initial_fast mode () in
          Compile.lookup (Compile.run_program ce tprog) name);
    };
    {
      b_name = "cycles";
      run =
        (fun mode tprog name ->
          let env = Cycles.initial_env mode (Prims.new_counters ()) in
          Cycles.lookup (Cycles.run_program env tprog) name);
    };
  ]

let value = Alcotest.testable Value.pp Value.equal

let both name src binding expected =
  let tprog = typecheck name src in
  List.iter
    (fun b ->
      Alcotest.check value
        (Printf.sprintf "%s (%s)" name b.b_name)
        expected
        (b.run Prims.Checked tprog binding))
    backends

let test_raise_handle () =
  both "simple handle"
    {|
exception Boom
fun f(x) = if x > 0 then x else raise Boom
val r = (f(~1) handle Boom => 42)
|}
    "r" (Vint 42);
  both "no exception means no handler"
    {|
exception Boom
fun f(x) = if x > 0 then x else raise Boom
val r = (f(7) handle Boom => 42)
|}
    "r" (Vint 7);
  both "carried value"
    {|
exception Fail of int
val r = ((raise Fail 3) handle Fail n => n * 10)
|}
    "r" (Vint 30);
  both "first matching handler"
    {|
exception A
exception B
val r = ((raise B) handle A => 1 | B => 2 | _ => 3)
|}
    "r" (Vint 2);
  both "wildcard handler"
    {|
exception A
val r = ((raise A) handle _ => 9)
|}
    "r" (Vint 9)

let test_propagation () =
  both "unmatched re-raises to outer handler"
    {|
exception A
exception B
val r = (((raise A) handle B => 1) handle A => 2)
|}
    "r" (Vint 2);
  both "handler body may re-raise"
    {|
exception A
exception B
val r = (((raise A) handle A => raise B) handle B => 5)
|}
    "r" (Vint 5)

let test_runtime_exceptions_observable () =
  both "Subscript from a checked access"
    {|
fun get(a, i) = subCK(a, i) handle Subscript => ~1
val r = (get(array(3, 5), 1), get(array(3, 5), 7))
|}
    "r"
    (Vtuple [ Vint 5; Vint (-1) ]);
  both "Div from division"
    {|
fun safeDiv(a, b) = divCK(a, b) handle Div => 0
val r = (safeDiv(7, 2), safeDiv(7, 0))
|}
    "r"
    (Vtuple [ Vint 3; Vint 0 ])

let test_uncaught_escapes () =
  let tprog = typecheck "uncaught" {|
exception Boom
fun f(x) = raise Boom
val g = f
|} in
  List.iter
    (fun b ->
      let g = b.run Prims.Checked tprog "g" in
      match as_fun g (Vint 0) with
      | _ -> Alcotest.fail "expected the exception to escape"
      | exception Dml_exn (Vcon ("Boom", None)) -> ())
    backends

let test_static_errors () =
  let rejected name src =
    match Pipeline.check_s (Session.create ()) src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected a static error" name
  in
  rejected "raising a non-exception" "val r = raise 3";
  rejected "handler arm type mismatch" {|
exception A
val r = (1 handle A => true)
|};
  rejected "duplicate exception" {|
exception A
exception A
|};
  rejected "polymorphic exception argument" {|
exception Poly of 'a list
|};
  rejected "handle with non-exn pattern" {|
exception A
val r = (1 handle 0 => 2)
|}

let test_handle_coverage_warnings () =
  (* handlers may be partial without a warning; unreachable arms still warn *)
  let warnings src =
    match Pipeline.check_s (Session.create ()) src with
    | Ok r -> List.map fst r.Pipeline.rp_warnings
    | Error f -> Alcotest.failf "%s" (Pipeline.failure_to_string f)
  in
  Alcotest.(check (list string)) "partial handler is fine" []
    (warnings {|
exception A
val r = (1 handle A => 2)
|});
  Alcotest.(check bool) "shadowed handler arm warns" true
    (List.exists
       (fun w -> String.length w >= 6)
       (warnings {|
exception A
val r = (1 handle _ => 2 | A => 3)
|}))

let test_dependent_types_through_handle () =
  (* a handle expression can still carry index information via checking *)
  match
    Pipeline.check_valid_s (Session.create ())
      {|
exception Empty
fun safeHead(l) = (case l of x :: _ => x | nil => raise Empty)
where safeHead <| {n:nat} int list(n) -> int
val r = (safeHead(nil) handle Empty => 0)
|}
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_exceptions_in_let () =
  both "local exception declaration"
    {|
fun f(x) = let
  exception Local
  fun g(y) = if y < 0 then raise Local else y
in
  g(x) handle Local => 0
end
val r = (f(5), f(~5))
|}
    "r"
    (Vtuple [ Vint 5; Vint 0 ])

let () =
  Alcotest.run "exceptions"
    [
      ( "semantics",
        [
          Alcotest.test_case "raise and handle" `Quick test_raise_handle;
          Alcotest.test_case "propagation" `Quick test_propagation;
          Alcotest.test_case "runtime exceptions observable" `Quick
            test_runtime_exceptions_observable;
          Alcotest.test_case "uncaught escapes" `Quick test_uncaught_escapes;
          Alcotest.test_case "local declarations" `Quick test_exceptions_in_let;
        ] );
      ( "typing",
        [
          Alcotest.test_case "static errors" `Quick test_static_errors;
          Alcotest.test_case "coverage warnings" `Quick test_handle_coverage_warnings;
          Alcotest.test_case "dependent types through handle" `Quick
            test_dependent_types_through_handle;
        ] );
    ]
