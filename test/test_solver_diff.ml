(* Differential solver fuzzing: random linear goals (bounded coefficients,
   div/mod in the shapes binary search and byte-copy produce) cross-check
   Fourier--Motzkin against the rational simplex, with random-assignment
   falsification as a soundness oracle.  Metamorphic companions check that
   satisfiability is invariant under conjunct permutation, variable renaming
   and positive coefficient scaling — and that the cache canonicalizer maps
   all three onto the same digest, so a cached verdict is replayed for
   exactly the goals it is valid for. *)

open Dml_index
open Dml_constr
module Solver = Dml_solver.Solver
module Canon = Dml_cache.Canon
module Cache = Dml_cache.Cache

(* --- a first-order description of a goal (marshallable, shrinkable) --------- *)

type texp =
  | Tvar of int  (* index into the goal's variable pool *)
  | Tconst of int
  | Tadd of texp * texp
  | Tsub of texp * texp
  | Tmulc of int * texp
  | Tdiv of texp * int  (* divisor in {2,4,8}: the binary-search shapes *)
  | Tmod of texp * int

type tatom = { ta_rel : Idx.rel; ta_lhs : texp; ta_rhs : texp }
type tgoal = { tg_nvars : int; tg_hyps : tatom list; tg_concl : tatom }

let rec sexp_of_texp = function
  | Tvar i -> Printf.sprintf "v%d" i
  | Tconst c -> string_of_int c
  | Tadd (a, b) -> Printf.sprintf "(+ %s %s)" (sexp_of_texp a) (sexp_of_texp b)
  | Tsub (a, b) -> Printf.sprintf "(- %s %s)" (sexp_of_texp a) (sexp_of_texp b)
  | Tmulc (k, e) -> Printf.sprintf "(* %d %s)" k (sexp_of_texp e)
  | Tdiv (e, d) -> Printf.sprintf "(div %s %d)" (sexp_of_texp e) d
  | Tmod (e, d) -> Printf.sprintf "(mod %s %d)" (sexp_of_texp e) d

let rel_name = function
  | Idx.Rlt -> "<"
  | Idx.Rle -> "<="
  | Idx.Req -> "="
  | Idx.Rne -> "<>"
  | Idx.Rge -> ">="
  | Idx.Rgt -> ">"

let sexp_of_tatom a =
  Printf.sprintf "(%s %s %s)" (rel_name a.ta_rel) (sexp_of_texp a.ta_lhs)
    (sexp_of_texp a.ta_rhs)

let sexp_of_tgoal g =
  Printf.sprintf "(goal (vars %d) (hyps %s) (concl %s))" g.tg_nvars
    (String.concat " " (List.map sexp_of_tatom g.tg_hyps))
    (sexp_of_tatom g.tg_concl)

(* --- realization as a solver goal -------------------------------------------- *)

let rec iexp_of_texp vars = function
  | Tvar i -> Idx.Ivar vars.(i mod Array.length vars)
  | Tconst c -> Idx.Iconst c
  | Tadd (a, b) -> Idx.Iadd (iexp_of_texp vars a, iexp_of_texp vars b)
  | Tsub (a, b) -> Idx.Isub (iexp_of_texp vars a, iexp_of_texp vars b)
  | Tmulc (k, e) -> Idx.Imul (Idx.Iconst k, iexp_of_texp vars e)
  | Tdiv (e, d) -> Idx.Idiv (iexp_of_texp vars e, Idx.Iconst d)
  | Tmod (e, d) -> Idx.Imod (iexp_of_texp vars e, Idx.Iconst d)

let bexp_of_tatom vars a =
  Idx.Bcmp (a.ta_rel, iexp_of_texp vars a.ta_lhs, iexp_of_texp vars a.ta_rhs)

let fresh_vars tg = Array.init tg.tg_nvars (fun i -> Ivar.fresh (Printf.sprintf "v%d" i))

let goal_with_vars vars tg =
  {
    Constr.goal_vars = Array.to_list (Array.map (fun v -> (v, Idx.Sint)) vars);
    goal_hyps = List.map (bexp_of_tatom vars) tg.tg_hyps;
    goal_concl = bexp_of_tatom vars tg.tg_concl;
  }

let goal_of_tgoal tg = goal_with_vars (fresh_vars tg) tg

(* --- verdict classes ---------------------------------------------------------- *)

type cls = Cvalid | Cnot | Cundecided

let cls = function
  | Solver.Valid -> Cvalid
  | Solver.Not_valid _ -> Cnot
  | Solver.Unsupported _ | Solver.Timeout _ -> Cundecided

let cls_name = function Cvalid -> "valid" | Cnot -> "not-valid" | Cundecided -> "undecided"
let check m g = cls (Solver.check_goal ~method_:m g)

let methods =
  [
    (Solver.Fm_plain, "fm-plain");
    (Solver.Fm_tightened, "fm");
    (Solver.Simplex_rational, "simplex");
  ]

(* --- random-assignment falsification ------------------------------------------ *)

(* a deterministic spread of assignments in [-6..6]; if some assignment
   satisfies every hypothesis and falsifies the conclusion, the goal is not
   valid and no method may claim otherwise *)
let counterexample_assignment tg =
  let vars = fresh_vars tg in
  let g = goal_with_vars vars tg in
  let found = ref None in
  (try
     for trial = 0 to 39 do
       let env =
         Array.to_seq vars
         |> Seq.mapi (fun j v ->
                (v, Idx.Vint ((((trial * 7) + (j * 13) + (trial * trial * 3)) mod 13) - 6)))
         |> Ivar.Map.of_seq
       in
       if
         List.for_all (fun h -> Idx.eval_bexp env h) g.Constr.goal_hyps
         && not (Idx.eval_bexp env g.Constr.goal_concl)
       then begin
         found := Some env;
         raise Exit
       end
     done
   with Exit -> ());
  !found

(* --- generator ----------------------------------------------------------------- *)

let gen_texp ~div nvars =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Tvar i) (int_bound (nvars - 1));
        map (fun c -> Tconst c) (int_range (-8) 8);
      ]
  in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n = 0 then leaf
      else
        frequency
          ([
             (2, map2 (fun a b -> Tadd (a, b)) (self (n / 2)) (self (n / 2)));
             (2, map2 (fun a b -> Tsub (a, b)) (self (n / 2)) (self (n / 2)));
             (2, map2 (fun k e -> Tmulc (k, e)) (int_bound 4) (self (n - 1)));
             (2, leaf);
           ]
          @
          if div then
            [
              (1, map2 (fun e d -> Tdiv (e, d)) (self (n - 1)) (oneofl [ 2; 4; 8 ]));
              (1, map2 (fun e d -> Tmod (e, d)) (self (n - 1)) (oneofl [ 2; 4; 8 ]));
            ]
          else []))

let gen_tatom ~div nvars =
  let open QCheck.Gen in
  map3
    (fun r l rhs -> { ta_rel = r; ta_lhs = l; ta_rhs = rhs })
    (oneofl [ Idx.Rlt; Idx.Rle; Idx.Req; Idx.Rne; Idx.Rge; Idx.Rgt ])
    (gen_texp ~div nvars) (gen_texp ~div nvars)

let gen_tgoal ~div =
  let open QCheck.Gen in
  int_range 1 3 >>= fun nvars ->
  map2
    (fun hyps concl -> { tg_nvars = nvars; tg_hyps = hyps; tg_concl = concl })
    (list_size (int_bound 4) (gen_tatom ~div nvars))
    (gen_tatom ~div nvars)

let rec shrink_texp t yield =
  match t with
  | Tvar _ -> ()
  | Tconst c -> QCheck.Shrink.int c (fun c' -> yield (Tconst c'))
  | Tadd (a, b) | Tsub (a, b) ->
      yield a;
      yield b;
      let rebuild x y = match t with Tadd _ -> Tadd (x, y) | _ -> Tsub (x, y) in
      shrink_texp a (fun a' -> yield (rebuild a' b));
      shrink_texp b (fun b' -> yield (rebuild a b'))
  | Tmulc (k, e) ->
      yield e;
      QCheck.Shrink.int k (fun k' -> yield (Tmulc (k', e)));
      shrink_texp e (fun e' -> yield (Tmulc (k, e')))
  | Tdiv (e, d) ->
      yield e;
      shrink_texp e (fun e' -> yield (Tdiv (e', d)))
  | Tmod (e, d) ->
      yield e;
      shrink_texp e (fun e' -> yield (Tmod (e', d)))

let shrink_tatom a yield =
  shrink_texp a.ta_lhs (fun l -> yield { a with ta_lhs = l });
  shrink_texp a.ta_rhs (fun r -> yield { a with ta_rhs = r })

let shrink_tgoal g yield =
  QCheck.Shrink.list ~shrink:shrink_tatom g.tg_hyps (fun hyps -> yield { g with tg_hyps = hyps });
  shrink_tatom g.tg_concl (fun concl -> yield { g with tg_concl = concl })

let print_tgoal tg =
  (* recompute the verdicts so the reported counterexample carries them *)
  let g = goal_of_tgoal tg in
  Printf.sprintf "%s [%s]" (sexp_of_tgoal tg)
    (String.concat " "
       (List.map (fun (m, name) -> Printf.sprintf "%s=%s" name (cls_name (check m g))) methods))

let arb_tgoal ~div = QCheck.make ~print:print_tgoal ~shrink:shrink_tgoal (gen_tgoal ~div)

(* --- the differential property ------------------------------------------------- *)

(* Fm_plain and Simplex_rational are both complete rational procedures over
   the same linearized systems: whenever both decide, they must agree.
   Integral tightening only ever proves more: simplex-valid implies
   tightened-valid, and a tightened refutation (an integer model exists)
   implies a rational refutation.  A concrete falsifying assignment beats
   them all: no method may claim Valid over it. *)
let differential tg =
  let g = goal_of_tgoal tg in
  let plain = check Solver.Fm_plain g in
  let tight = check Solver.Fm_tightened g in
  let simplex = check Solver.Simplex_rational g in
  let agree =
    match (plain, simplex) with
    | Cundecided, _ | _, Cundecided -> true
    | a, b -> a = b
  in
  let monotone_valid = not (simplex = Cvalid && tight = Cnot) in
  let monotone_refute = not (tight = Cnot && simplex = Cvalid) in
  let sound =
    match counterexample_assignment tg with
    | None -> true
    | Some _ -> plain <> Cvalid && tight <> Cvalid && simplex <> Cvalid
  in
  if not agree then QCheck.Test.fail_report "fm-plain and simplex disagree";
  if not (monotone_valid && monotone_refute) then
    QCheck.Test.fail_report "tightening lost a verdict";
  if not sound then QCheck.Test.fail_report "method claims Valid against a concrete model";
  true

let diff_test =
  QCheck.Test.make ~count:1000 ~name:"fm vs simplex differential" (arb_tgoal ~div:true)
    differential

(* --- lane parity: the machine-int fast path vs bignum --------------------------- *)

(* Adversarial coefficient generator: atoms of the shape [K*v_i <= v_j + c]
   with K near max_int/2, so that eliminating v_i combines two constraints
   whose coefficients multiply to ~K^2 — far past 63 bits.  Chained over
   several hypotheses this forces the native lane through its overflow
   escalation; smaller K (2^20, 2^31) exercise goals that stay native all
   the way through. *)
let gen_adversarial =
  let open QCheck.Gen in
  int_range 2 3 >>= fun nvars ->
  let big = oneofl [ (max_int / 2) - 1; max_int / 3; (1 lsl 40) + 11; (1 lsl 31) - 1; 1 lsl 20 ] in
  let atom =
    big >>= fun k ->
    int_bound (nvars - 1) >>= fun i ->
    int_bound (nvars - 1) >>= fun j ->
    oneofl [ Idx.Rlt; Idx.Rle; Idx.Req; Idx.Rge; Idx.Rgt ] >>= fun r ->
    int_range (-4) 4 >>= fun c ->
    return { ta_rel = r; ta_lhs = Tmulc (k, Tvar i); ta_rhs = Tadd (Tvar j, Tconst c) }
  in
  map2
    (fun hyps concl -> { tg_nvars = nvars; tg_hyps = hyps; tg_concl = concl })
    (list_size (int_range 1 4) atom)
    atom

(* ~3/4 ordinary goals (native fast path all the way), ~1/4 adversarial
   (forced escalation): parity must hold across the boundary *)
let gen_mixed =
  QCheck.Gen.frequency [ (3, gen_tgoal ~div:true); (1, gen_adversarial) ]

let arb_mixed = QCheck.make ~print:print_tgoal ~shrink:shrink_tgoal gen_mixed

(* Bit-for-bit verdict equality, hints included: the native lane either
   completes with the exact verdict the bignum lane would compute (the
   algorithms mirror each other's deterministic choices) or overflows and
   re-solves on bignum — in both cases the observable answer is identical. *)
let lane_parity tg =
  let g = goal_of_tgoal tg in
  List.for_all
    (fun (m, name) ->
      let native = Solver.check_goal ~method_:m ~lane:Solver.Lane_native g in
      let bignum = Solver.check_goal ~method_:m ~lane:Solver.Lane_bignum g in
      if native <> bignum then
        QCheck.Test.fail_reportf "lanes disagree under %s: native=%s bignum=%s" name
          (Solver.verdict_slug native) (Solver.verdict_slug bignum);
      true)
    methods

let lane_test =
  QCheck.Test.make ~count:1000 ~name:"native vs bignum lane parity" arb_mixed lane_parity

(* --- metamorphic properties ----------------------------------------------------- *)

(* a deterministic permutation that actually moves elements *)
let permute_hyps g = { g with tg_hyps = List.rev g.tg_hyps }

let metamorphic_permutation tg =
  let vars = fresh_vars tg in
  let g = goal_with_vars vars tg in
  let g' = goal_with_vars vars (permute_hyps tg) in
  List.for_all (fun (m, _) -> check m g = check m g') methods
  && Canon.digest g = Canon.digest g'

let metamorphic_renaming tg =
  (* two independent [fresh_vars] pools: alpha-renaming plus fresh ids *)
  let g = goal_of_tgoal tg in
  let g' = goal_of_tgoal tg in
  List.for_all (fun (m, _) -> check m g = check m g') methods
  && Canon.digest g = Canon.digest g'

let rec affine = function
  | Tvar _ | Tconst _ -> true
  | Tadd (a, b) | Tsub (a, b) -> affine a && affine b
  | Tmulc (_, e) -> affine e
  | Tdiv _ | Tmod _ -> false

let affine_goal tg =
  List.for_all (fun a -> affine a.ta_lhs && affine a.ta_rhs) (tg.tg_concl :: tg.tg_hyps)

let scale_atom k a = { a with ta_lhs = Tmulc (k, a.ta_lhs); ta_rhs = Tmulc (k, a.ta_rhs) }

(* Scaling interacts with the integrality rewrite of strict atoms:
   [a < b] becomes [a <= b-1] at scale 1 but only [ka <= kb-1] at scale k,
   which is rationally weaker — so the rational procedures may lose a proof
   on the scaled twin (never gain one).  The tightened elimination's
   gcd/floor normalization maps [ka <= kc-1] back to [a <= c-1] exactly, so
   its verdict is invariant outright. *)
let metamorphic_scaling tg =
  QCheck.assume (affine_goal tg);
  let vars = fresh_vars tg in
  let g = goal_with_vars vars tg in
  List.for_all
    (fun k ->
      let tg' =
        {
          tg with
          tg_hyps = List.map (scale_atom k) tg.tg_hyps;
          tg_concl = scale_atom k tg.tg_concl;
        }
      in
      let g' = goal_with_vars vars tg' in
      check Solver.Fm_tightened g = check Solver.Fm_tightened g'
      && List.for_all
           (fun m -> not (check m g = Cnot && check m g' = Cvalid))
           [ Solver.Fm_plain; Solver.Simplex_rational ]
      (* digests may legitimately differ across scales (the strictness
         constant above), but a collision must still mean canonical equality *)
      && (Canon.digest g <> Canon.digest g' || Canon.canonical g = Canon.canonical g'))
    [ 2; 3; 5 ]

(* the permuted twin must hit the cache (same digest) and the replayed
   verdict must be the one the solver would have computed *)
let metamorphic_cache tg =
  let vars = fresh_vars tg in
  let g = goal_with_vars vars tg in
  let g' = goal_with_vars vars (permute_hyps tg) in
  (Canon.digest g = Canon.digest g' && Canon.canonical g = Canon.canonical g')
  &&
  let cache = Cache.create () in
  let stats = Solver.new_stats () in
  let v = cls (Solver.check_goal ~stats ~cache g) in
  let v' = cls (Solver.check_goal ~stats ~cache g') in
  let cold = check Solver.Fm_tightened g' in
  v = v' && v' = cold && stats.Solver.cache_hits >= 1

let meta_tests =
  [
    QCheck.Test.make ~count:300 ~name:"sat invariant under hyp permutation"
      (arb_tgoal ~div:true) metamorphic_permutation;
    QCheck.Test.make ~count:300 ~name:"sat invariant under variable renaming"
      (arb_tgoal ~div:true) metamorphic_renaming;
    QCheck.Test.make ~count:300 ~name:"sat invariant under positive scaling"
      (arb_tgoal ~div:false) metamorphic_scaling;
    QCheck.Test.make ~count:200 ~name:"canonicalizer replays cached verdicts"
      (arb_tgoal ~div:true) metamorphic_cache;
  ]

(* --- unit regressions ------------------------------------------------------------ *)

(* the five Figure 4 binary-search goals: every obligation the paper's
   solver must discharge, div included *)
let bsearch_goals () =
  let h = Ivar.fresh "h" and l = Ivar.fresh "l" and size = Ivar.fresh "size" in
  let le a b = Idx.Bcmp (Idx.Rle, a, b) in
  let ge a b = Idx.Bcmp (Idx.Rge, a, b) in
  let lt a b = Idx.Bcmp (Idx.Rlt, a, b) in
  let iv x = Idx.Ivar x in
  let m = Idx.Iadd (iv l, Idx.Idiv (Idx.Isub (iv h, iv l), Idx.Iconst 2)) in
  let hyps =
    [
      le (Idx.Iconst 0) (Idx.Iadd (iv h, Idx.Iconst 1));
      le (Idx.Iadd (iv h, Idx.Iconst 1)) (iv size);
      le (Idx.Iconst 0) (iv l);
      le (iv l) (iv size);
      ge (iv h) (iv l);
    ]
  in
  let ctx = [ (h, Idx.Sint); (l, Idx.Sint); (size, Idx.Sint) ] in
  let goal concl = { Constr.goal_vars = ctx; goal_hyps = hyps; goal_concl = concl } in
  [
    goal (lt m (iv size));
    goal (ge (Idx.Iadd (Idx.Isub (m, Idx.Iconst 1), Idx.Iconst 1)) (Idx.Iconst 0));
    goal (le (Idx.Iadd (Idx.Isub (m, Idx.Iconst 1), Idx.Iconst 1)) (iv size));
    goal (ge (Idx.Iadd (m, Idx.Iconst 1)) (Idx.Iconst 0));
    goal (le (Idx.Iadd (m, Idx.Iconst 1)) (iv size));
  ]

let test_bsearch_regression () =
  List.iteri
    (fun i g ->
      Alcotest.(check string)
        (Printf.sprintf "goal %d valid under the paper's solver" i)
        "valid"
        (Solver.verdict_slug (Solver.check_goal ~method_:Solver.Fm_tightened g)))
    (bsearch_goals ())

(* parity contradiction x = 2y /\ x = 2z+1 |- false: rationally satisfiable
   (so the rational procedures answer Not_valid) but integrally absurd —
   only the tightened elimination refutes it *)
let test_divisibility_separation () =
  let x = Ivar.fresh "x" and y = Ivar.fresh "y" and z = Ivar.fresh "z" in
  let g =
    {
      Constr.goal_vars = [ (x, Idx.Sint); (y, Idx.Sint); (z, Idx.Sint) ];
      goal_hyps =
        [
          Idx.Bcmp (Idx.Req, Idx.Ivar x, Idx.Imul (Idx.Iconst 2, Idx.Ivar y));
          Idx.Bcmp
            ( Idx.Req,
              Idx.Ivar x,
              Idx.Iadd (Idx.Imul (Idx.Iconst 2, Idx.Ivar z), Idx.Iconst 1) );
        ];
      goal_concl = Idx.Bconst false;
    }
  in
  Alcotest.(check string) "tightened refutes the parity clash" "valid"
    (Solver.verdict_slug (Solver.check_goal ~method_:Solver.Fm_tightened g));
  Alcotest.(check string) "plain elimination cannot" "not-valid"
    (Solver.verdict_slug (Solver.check_goal ~method_:Solver.Fm_plain g));
  Alcotest.(check string) "rational simplex cannot" "not-valid"
    (Solver.verdict_slug (Solver.check_goal ~method_:Solver.Simplex_rational g))

(* big*x <= y /\ y <= big*x |- y <= 0 with big = 2^40: eliminating x pairs
   the two hypotheses, and the combination multiplies big by big — past 63
   bits.  The native lane must raise internally, escalate once, and still
   hand back exactly the bignum verdict; the ladder counter (method
   escalation) must stay untouched. *)
let test_forced_overflow_escalation () =
  let x = Ivar.fresh "x" and y = Ivar.fresh "y" in
  let big = 1 lsl 40 in
  let g =
    {
      Constr.goal_vars = [ (x, Idx.Sint); (y, Idx.Sint) ];
      goal_hyps =
        [
          Idx.Bcmp (Idx.Rle, Idx.Imul (Idx.Iconst big, Idx.Ivar x), Idx.Ivar y);
          Idx.Bcmp (Idx.Rle, Idx.Ivar y, Idx.Imul (Idx.Iconst big, Idx.Ivar x));
        ];
      goal_concl = Idx.Bcmp (Idx.Rle, Idx.Ivar y, Idx.Iconst 0);
    }
  in
  let sn = Solver.new_stats () in
  let vn = Solver.check_goal ~method_:Solver.Fm_plain ~lane:Solver.Lane_native ~stats:sn g in
  let sb = Solver.new_stats () in
  let vb = Solver.check_goal ~method_:Solver.Fm_plain ~lane:Solver.Lane_bignum ~stats:sb g in
  Alcotest.(check bool) "lanes agree on the overflowing goal" true (vn = vb);
  Alcotest.(check bool) "native lane overflow-escalated" true
    (sn.Solver.overflow_escalations >= 1);
  Alcotest.(check int) "ladder escalations untouched by overflow" 0 sn.Solver.escalations;
  Alcotest.(check int) "bignum lane never overflow-escalates" 0 sb.Solver.overflow_escalations

(* 2x = 1 |- false: integrally absurd, rationally satisfiable at x = 1/2.
   The integer witness walk cannot represent that point (floor division used
   to truncate it to x = 0, which fails verification and lost the hint);
   the rational fallback must reconstruct it exactly. *)
let test_fractional_witness () =
  let x = Ivar.fresh "x" in
  let g =
    {
      Constr.goal_vars = [ (x, Idx.Sint) ];
      goal_hyps = [ Idx.Bcmp (Idx.Req, Idx.Imul (Idx.Iconst 2, Idx.Ivar x), Idx.Iconst 1) ];
      goal_concl = Idx.Bconst false;
    }
  in
  (match Solver.check_goal ~method_:Solver.Fm_plain g with
  | Solver.Not_valid hint ->
      Alcotest.(check string) "fractional counterexample reconstructed"
        "counterexample: x = 1/2" hint
  | v -> Alcotest.fail ("expected not-valid, got " ^ Solver.verdict_slug v));
  (* the tightened elimination sees the parity clash and proves the goal *)
  Alcotest.(check string) "tightened still refutes 2x = 1" "valid"
    (Solver.verdict_slug (Solver.check_goal ~method_:Solver.Fm_tightened g))

let () =
  Alcotest.run "solver-diff"
    [
      ("differential", [ QCheck_alcotest.to_alcotest diff_test ]);
      ("lane-parity", [ QCheck_alcotest.to_alcotest lane_test ]);
      ("metamorphic", List.map QCheck_alcotest.to_alcotest meta_tests);
      ( "regressions",
        [
          Alcotest.test_case "figure 4 binary search goals" `Quick test_bsearch_regression;
          Alcotest.test_case "divisibility separates the methods" `Quick
            test_divisibility_separation;
          Alcotest.test_case "overflow escalates to the bignum lane" `Quick
            test_forced_overflow_escalation;
          Alcotest.test_case "fractional witness survives reconstruction" `Quick
            test_fractional_witness;
        ] );
    ]
