(* The constraint-verdict cache: canonicalization identifies goals up to
   alpha-renaming, conjunct order and integer-equivalent atoms; the store
   evicts LRU and survives (or gracefully ignores) a damaged disk layer;
   tier rules keep reuse sound; and the oracle property — cache-on and
   cache-off produce identical verdicts — holds over the whole benchmark
   corpus and over generated token soup. *)

open Dml_index
open Dml_constr
open Dml_cache
open Dml_solver
open Dml_core
open Idx

let v = Ivar.fresh
let le a b = Bcmp (Rle, a, b)
let lt a b = Bcmp (Rlt, a, b)
let ge a b = Bcmp (Rge, a, b)
let eq a b = Bcmp (Req, a, b)
let goal vars hyps concl = { Constr.goal_vars = vars; goal_hyps = hyps; goal_concl = concl }

let check_digest_eq msg g1 g2 =
  Alcotest.(check string) msg (Canon.canonical g1) (Canon.canonical g2);
  Alcotest.(check string) (msg ^ " (digest)") (Canon.digest g1) (Canon.digest g2)

let check_digest_ne msg g1 g2 =
  Alcotest.(check bool) msg true (Canon.digest g1 <> Canon.digest g2)

(* --- canonicalization ------------------------------------------------------ *)

(* [0 <= x, x < n |- x <= n] under two independent sets of fresh binders *)
let indexing_goal () =
  let x = v "x" and n = v "n" in
  goal
    [ (x, Sint); (n, Sint) ]
    [ le (Iconst 0) (Ivar x); lt (Ivar x) (Ivar n) ]
    (le (Ivar x) (Ivar n))

let test_alpha_renaming () =
  let g1 = indexing_goal () in
  let a = v "completely_different" and b = v "names" in
  let g2 =
    goal
      [ (a, Sint); (b, Sint) ]
      [ le (Iconst 0) (Ivar a); lt (Ivar a) (Ivar b) ]
      (le (Ivar a) (Ivar b))
  in
  check_digest_eq "alpha-renamed goals canonicalize equal" g1 g2

let test_hyp_order_and_duplication () =
  let x = v "x" and n = v "n" in
  let h1 = le (Iconst 0) (Ivar x) and h2 = lt (Ivar x) (Ivar n) in
  let concl = le (Ivar x) (Ivar n) in
  let vars = [ (x, Sint); (n, Sint) ] in
  check_digest_eq "hypothesis order is canonicalized away"
    (goal vars [ h1; h2 ] concl)
    (goal vars [ h2; h1 ] concl);
  check_digest_eq "duplicate hypotheses are deduplicated"
    (goal vars [ h1; h2 ] concl)
    (goal vars [ h1; h2; h1 ] concl);
  check_digest_eq "a conjoined hypothesis equals the split list"
    (goal vars [ Band (h1, h2) ] concl)
    (goal vars [ h2; h1 ] concl);
  check_digest_eq "nested conjunction flattens"
    (goal vars [ Band (h1, Band (h2, h1)) ] concl)
    (goal vars [ h1; h2 ] concl)

let test_atom_equivalences () =
  let x = v "x" and y = v "y" in
  let vars = [ (x, Sint); (y, Sint) ] in
  let g c = goal vars [] c in
  check_digest_eq "x < y equals x + 1 <= y (integrality)"
    (g (lt (Ivar x) (Ivar y)))
    (g (le (Iadd (Ivar x, Iconst 1)) (Ivar y)));
  check_digest_eq "2x <= 4 equals x <= 2 (gcd division)"
    (g (le (Imul (Iconst 2, Ivar x)) (Iconst 4)))
    (g (le (Ivar x) (Iconst 2)));
  check_digest_eq "x <= y equals y >= x (direction)"
    (g (le (Ivar x) (Ivar y)))
    (g (ge (Ivar y) (Ivar x)));
  check_digest_eq "3x = 3y equals x = y"
    (g (eq (Imul (Iconst 3, Ivar x)) (Imul (Iconst 3, Ivar y))))
    (g (eq (Ivar x) (Ivar y)))

let test_distinct_goals_differ () =
  let x = v "x" and n = v "n" in
  let vars = [ (x, Sint); (n, Sint) ] in
  check_digest_ne "different bounds differ"
    (goal vars [] (le (Ivar x) (Iconst 1)))
    (goal vars [] (le (Ivar x) (Iconst 2)));
  check_digest_ne "different hypotheses differ"
    (goal vars [ le (Iconst 0) (Ivar x) ] (le (Ivar x) (Ivar n)))
    (goal vars [ le (Iconst 1) (Ivar x) ] (le (Ivar x) (Ivar n)));
  check_digest_ne "conclusion vs hypothesis roles differ"
    (goal vars [ le (Ivar x) (Ivar n) ] (le (Iconst 0) (Ivar x)))
    (goal vars [ le (Iconst 0) (Ivar x) ] (le (Ivar x) (Ivar n)))

let test_nonaffine_stable () =
  let x = v "x" and n = v "n" in
  let g1 =
    goal
      [ (x, Sint); (n, Sint) ]
      [ le (Iconst 0) (Ivar x) ]
      (le (Idiv (Ivar x, Iconst 2)) (Ivar n))
  in
  let a = v "a" and b = v "b" in
  let g2 =
    goal
      [ (a, Sint); (b, Sint) ]
      [ le (Iconst 0) (Ivar a) ]
      (le (Idiv (Ivar a, Iconst 2)) (Ivar b))
  in
  check_digest_eq "non-affine atoms canonicalize structurally" g1 g2

(* --- the benchmark corpus: functionality and no collisions ------------------ *)

let corpus_goals () =
  List.concat_map
    (fun (b : Dml_programs.Programs.benchmark) ->
      match Pipeline.check_s (Session.create ()) b.Dml_programs.Programs.source with
      | Error _ -> []
      | Ok r ->
          List.concat_map
            (fun co ->
              let c =
                Constr.eliminate_existentials co.Pipeline.co_obligation.Elab.ob_constr
              in
              match Constr.goals c with Ok gs -> gs | Error _ -> [])
            r.Pipeline.rp_obligations)
    Dml_programs.Programs.all

let test_corpus_no_collisions () =
  let goals = corpus_goals () in
  Alcotest.(check bool) "corpus yields goals" true (List.length goals > 50);
  let by_digest : (string, string) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun g ->
      let d = Canon.digest g and c = Canon.canonical g in
      Alcotest.(check int) "digest is 32 hex chars" Canon.digest_hex_length
        (String.length d);
      match Hashtbl.find_opt by_digest d with
      | None -> Hashtbl.add by_digest d c
      | Some c' ->
          Alcotest.(check string) "equal digests imply equal canonical forms" c' c)
    goals;
  (* sharing exists: strictly fewer classes than goals, but more than one *)
  let classes = Hashtbl.length by_digest in
  Alcotest.(check bool) "several digest classes" true (classes > 1);
  Alcotest.(check bool) "goals shared across the corpus" true
    (classes < List.length goals)

(* --- LRU eviction ----------------------------------------------------------- *)

let entry tier verdict = { Store.e_tier = tier; e_verdict = verdict }

let test_lru_eviction () =
  let s = Store.create ~max_entries:2 () in
  Store.add s "k1" (entry 1 Store.Valid);
  Store.add s "k2" (entry 1 Store.Valid);
  (* touch k1 so k2 is the least recently used *)
  ignore (Store.find s "k1");
  Store.add s "k3" (entry 1 Store.Valid);
  Alcotest.(check int) "capacity respected" 2 (Store.size s);
  Alcotest.(check int) "one eviction" 1 (Store.evictions s);
  Alcotest.(check bool) "LRU key evicted" true (Store.find s "k2" = None);
  Alcotest.(check bool) "touched key survives" true (Store.find s "k1" <> None);
  Alcotest.(check bool) "new key present" true (Store.find s "k3" <> None)

let test_cache_eviction_counter () =
  let c = Cache.create ~config:{ Cache.default_config with Cache.max_entries = 2 } () in
  Cache.add c ~digest:"d1" ~method_:"fm" ~tier:1 Cache.Valid;
  Cache.add c ~digest:"d2" ~method_:"fm" ~tier:1 Cache.Valid;
  Cache.add c ~digest:"d3" ~method_:"fm" ~tier:1 Cache.Valid;
  let s = Cache.snapshot c in
  Alcotest.(check int) "eviction counted" 1 s.Cache.s_evictions;
  Alcotest.(check int) "entries bounded" 2 s.Cache.s_entries;
  Alcotest.(check bool) "evicted digest misses" true
    (Cache.find c ~digest:"d1" ~method_:"fm" ~tier:1 = None)

(* --- budget-tier reuse rules ------------------------------------------------- *)

let test_tier_rules () =
  let c = Cache.create () in
  (* circumstantial: reusable only at equal-or-smaller tier *)
  Cache.add c ~digest:"t" ~method_:"fm" ~tier:3 (Cache.Timeout "fuel");
  Alcotest.(check bool) "timeout reused at smaller tier" true
    (Cache.find c ~digest:"t" ~method_:"fm" ~tier:2 <> None);
  Alcotest.(check bool) "timeout reused at equal tier" true
    (Cache.find c ~digest:"t" ~method_:"fm" ~tier:3 <> None);
  Alcotest.(check bool) "timeout discarded when the budget grew" true
    (Cache.find c ~digest:"t" ~method_:"fm" ~tier:4 = None);
  (* definitive: reusable unconditionally *)
  Cache.add c ~digest:"v" ~method_:"fm" ~tier:3 Cache.Valid;
  Alcotest.(check bool) "valid reused at any tier" true
    (Cache.find c ~digest:"v" ~method_:"fm" ~tier:max_int = Some Cache.Valid);
  (* a definitive verdict is never downgraded by a circumstantial one *)
  Cache.add c ~digest:"v" ~method_:"fm" ~tier:1 (Cache.Timeout "late");
  Alcotest.(check bool) "definitive survives circumstantial add" true
    (Cache.find c ~digest:"v" ~method_:"fm" ~tier:max_int = Some Cache.Valid);
  (* among circumstantial, the larger tier wins *)
  Cache.add c ~digest:"t" ~method_:"fm" ~tier:5 (Cache.Timeout "later");
  Alcotest.(check bool) "circumstantial upgraded to the larger tier" true
    (Cache.find c ~digest:"t" ~method_:"fm" ~tier:4 <> None);
  (* methods are independent key components *)
  Alcotest.(check bool) "method is part of the key" true
    (Cache.find c ~digest:"v" ~method_:"simplex" ~tier:1 = None)

(* --- persistence: roundtrip and damage hygiene -------------------------------- *)

let temp_dir () = Filename.temp_dir "dml-cache-test" ""

let test_disk_roundtrip () =
  let dir = temp_dir () in
  let s1 = Store.create ~dir () in
  Store.add s1 "key" (entry 7 (Store.Not_valid "cex"));
  let s2 = Store.create ~dir () in
  (match Store.find s2 "key" with
  | Some (e, `Disk) ->
      Alcotest.(check int) "tier survives the roundtrip" 7 e.Store.e_tier;
      Alcotest.(check bool) "verdict survives the roundtrip" true
        (e.Store.e_verdict = Store.Not_valid "cex")
  | Some (_, `Mem) -> Alcotest.fail "fresh store answered from memory"
  | None -> Alcotest.fail "persisted entry not found");
  (* the disk hit was promoted: a second lookup is a memo hit *)
  match Store.find s2 "key" with
  | Some (_, `Mem) -> ()
  | _ -> Alcotest.fail "disk hit was not promoted into the memo table"

let flip_last_byte path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string b in
  Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_bit_flip_is_a_miss () =
  let dir = temp_dir () in
  let s1 = Store.create ~dir () in
  Store.add s1 "key" (entry 3 Store.Valid);
  let path = Option.get (Store.disk_file s1 "key") in
  flip_last_byte path;
  let s2 = Store.create ~dir () in
  Alcotest.(check bool) "bit-flipped entry is a miss" true (Store.find s2 "key" = None);
  Alcotest.(check int) "corruption counted" 1 (Store.corrupt_entries s2)

let test_truncation_is_a_miss () =
  let dir = temp_dir () in
  let s1 = Store.create ~dir () in
  Store.add s1 "key" (entry 3 (Store.Timeout "deadline exceeded after a while"));
  let path = Option.get (Store.disk_file s1 "key") in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic (n / 2) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc b;
  close_out oc;
  let s2 = Store.create ~dir () in
  Alcotest.(check bool) "truncated entry is a miss" true (Store.find s2 "key" = None);
  Alcotest.(check int) "corruption counted" 1 (Store.corrupt_entries s2)

let test_foreign_file_is_a_miss () =
  let dir = temp_dir () in
  let s1 = Store.create ~dir () in
  Store.add s1 "key" (entry 1 Store.Valid);
  let path = Option.get (Store.disk_file s1 "key") in
  let oc = open_out_bin path in
  output_string oc "this is not a cache entry at all\n";
  close_out oc;
  let s2 = Store.create ~dir () in
  Alcotest.(check bool) "foreign file is a miss" true (Store.find s2 "key" = None);
  Alcotest.(check bool) "corruption counted" true (Store.corrupt_entries s2 >= 1)

let test_cache_level_corruption () =
  let dir = temp_dir () in
  let c1 = Cache.create ~config:{ Cache.default_config with dir = Some dir } () in
  Cache.add c1 ~digest:"deadbeef" ~method_:"fm" ~tier:2 Cache.Valid;
  let files = Sys.readdir dir in
  Alcotest.(check int) "one entry persisted" 1 (Array.length files);
  flip_last_byte (Filename.concat dir files.(0));
  let c2 = Cache.create ~config:{ Cache.default_config with dir = Some dir } () in
  Alcotest.(check bool) "corrupt disk entry becomes a cache miss" true
    (Cache.find c2 ~digest:"deadbeef" ~method_:"fm" ~tier:2 = None);
  Alcotest.(check int) "snapshot reports the corruption" 1
    (Cache.snapshot c2).Cache.s_corrupt

(* Regression: the temp-file name must be unique per in-flight write even
   within one process — a pid-only suffix collides when two tasks of the
   same process write the same key, one renaming the other's half-written
   file into place.  The fault-injection hook runs while the temp file is
   open, so [readdir] observes each write's temp name. *)
let test_tmp_names_unique () =
  let dir = temp_dir () in
  let s = Store.create ~dir () in
  let seen = ref [] in
  let capture _oc =
    Array.iter
      (fun f -> if not (Filename.check_suffix f ".dmlv") then seen := f :: !seen)
      (Sys.readdir dir)
  in
  Store.write_fault_injection := capture;
  Fun.protect
    ~finally:(fun () -> Store.write_fault_injection := (fun _ -> ()))
    (fun () ->
      Store.add s "k" (entry 1 Store.Valid);
      Store.add s "k" (entry 1 Store.Valid));
  match !seen with
  | [ b; a ] ->
      Alcotest.(check bool) "temp names of successive writes differ" true (a <> b)
  | l -> Alcotest.failf "expected two temp files over two writes, saw %d" (List.length l)

(* --- crash safety: quarantine, bounded growth, concurrent writers ------------- *)

(* A corrupt entry is not only a miss: it is renamed aside (so it is never
   re-read and re-rejected on every lookup) and counted. *)
let test_quarantine () =
  let dir = temp_dir () in
  let s1 = Store.create ~dir () in
  Store.add s1 "key" (entry 3 Store.Valid);
  let path = Option.get (Store.disk_file s1 "key") in
  flip_last_byte path;
  let s2 = Store.create ~dir () in
  Alcotest.(check bool) "corrupt entry is a miss" true (Store.find s2 "key" = None);
  Alcotest.(check int) "quarantine counted" 1 (Store.quarantined s2);
  Alcotest.(check bool) "entry renamed aside" true (Sys.file_exists (path ^ ".bad"));
  Alcotest.(check bool) "poisoned file gone" false (Sys.file_exists path);
  (* the slot is writable again, and the rewrite reads back *)
  Store.add s2 "key" (entry 3 Store.Valid);
  let s3 = Store.create ~dir () in
  (match Store.find s3 "key" with
  | Some (e, `Disk) -> Alcotest.(check int) "rewritten entry reads back" 3 e.Store.e_tier
  | _ -> Alcotest.fail "rewritten entry not found");
  Alcotest.(check int) "no further quarantine" 0 (Store.quarantined s3)

let dmlv_files dir =
  Sys.readdir dir |> Array.to_list |> List.filter (fun f -> Filename.check_suffix f ".dmlv")

let test_sweep_cap () =
  let dir = temp_dir () in
  let s = Store.create ~dir ~max_disk_entries:3 () in
  for i = 1 to 8 do
    Store.add s (Printf.sprintf "key%d" i) (entry 1 Store.Valid);
    (* distinct mtimes, so oldest-first is deterministic *)
    Unix.sleepf 0.01
  done;
  Store.sweep s;
  Alcotest.(check int) "swept down to the entry cap" 3 (List.length (dmlv_files dir));
  Alcotest.(check bool) "evictions counted" true (Store.disk_evictions s >= 5);
  (* quarantined copies count toward the cap and age out with everything
     else: push the directory over again with fresh entries, and the old
     group — the renamed .bad among it — is what gets reclaimed *)
  let survivor = List.hd (dmlv_files dir) in
  Sys.rename (Filename.concat dir survivor) (Filename.concat dir (survivor ^ ".bad"));
  Unix.sleepf 0.01;
  for i = 9 to 11 do
    Store.add s (Printf.sprintf "key%d" i) (entry 1 Store.Valid);
    Unix.sleepf 0.01
  done;
  Store.sweep s;
  Alcotest.(check bool) "quarantined copy swept under the cap" false
    (Sys.file_exists (Filename.concat dir (survivor ^ ".bad")));
  Alcotest.(check int) "still at the cap" 3 (List.length (dmlv_files dir))

let test_sweep_byte_cap () =
  let dir = temp_dir () in
  let s0 = Store.create ~dir () in
  Store.add s0 "k1" (entry 1 Store.Valid);
  Unix.sleepf 0.01;
  Store.add s0 "k2" (entry 1 Store.Valid);
  let bytes =
    List.fold_left
      (fun a f -> a + (Unix.stat (Filename.concat dir f)).Unix.st_size)
      0 (dmlv_files dir)
  in
  (* a budget one byte short of both entries: creating a capped store over
     the directory sweeps exactly the older one *)
  let _s = Store.create ~dir ~max_disk_bytes:(bytes - 1) () in
  Alcotest.(check int) "byte cap enforced at open" 1 (List.length (dmlv_files dir))

(* Many processes writing the same directory — including the same keys —
   must never produce a torn read: tmp+rename keeps every published entry
   whole, whichever writer wins. *)
let test_concurrent_writers () =
  let dir = temp_dir () in
  let n_writers = 4 and n_keys = 25 in
  let pids =
    List.init n_writers (fun w ->
        match Unix.fork () with
        | 0 ->
            let s = Store.create ~dir () in
            for i = 1 to n_keys do
              Store.add s (Printf.sprintf "key%d" i) (entry ((w + i) mod 5) Store.Valid)
            done;
            Unix._exit 0
        | pid -> pid)
  in
  List.iter
    (fun pid ->
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "writer exited cleanly" true (status = Unix.WEXITED 0))
    pids;
  let s = Store.create ~dir () in
  for i = 1 to n_keys do
    match Store.find s (Printf.sprintf "key%d" i) with
    | Some ({ Store.e_verdict = Store.Valid; _ }, _) -> ()
    | Some _ -> Alcotest.failf "key%d read back a wrong verdict" i
    | None -> Alcotest.failf "key%d unreadable after concurrent writes" i
  done;
  Alcotest.(check int) "no torn entries" 0 (Store.corrupt_entries s);
  Alcotest.(check int) "nothing quarantined" 0 (Store.quarantined s);
  Alcotest.(check int) "every writer's files were counted once" n_keys
    (List.length (dmlv_files dir))

(* --- solver integration ------------------------------------------------------- *)

let test_solver_hits () =
  let cache = Cache.create () in
  let stats = Solver.new_stats () in
  let g = indexing_goal () in
  let v1 = Solver.check_goal ~stats ~cache g in
  Alcotest.(check bool) "goal is valid" true (v1 = Solver.Valid);
  Alcotest.(check int) "first call misses" 1 stats.Solver.cache_misses;
  Alcotest.(check int) "no hit yet" 0 stats.Solver.cache_hits;
  (* an alpha-variant of the same goal: answered from the cache *)
  let a = v "a" and b = v "b" in
  let g' =
    goal
      [ (a, Sint); (b, Sint) ]
      [ le (Iconst 0) (Ivar a); lt (Ivar a) (Ivar b) ]
      (le (Ivar a) (Ivar b))
  in
  let v2 = Solver.check_goal ~stats ~cache g' in
  Alcotest.(check bool) "cached verdict replayed" true (v2 = v1);
  Alcotest.(check int) "second call hits" 1 stats.Solver.cache_hits;
  Alcotest.(check int) "hit still counts as a checked goal" 2 stats.Solver.checked_goals

(* --- the oracle property over the benchmark corpus ----------------------------- *)

(* Under the default (unlimited) configuration solving is deterministic, so
   cache-on and cache-off must agree verdict for verdict.  (With finite
   budgets a warm cache may legitimately *improve* verdicts — hits spend no
   fuel — which is why the oracle runs unlimited.) *)
let project ?cache src =
  match Pipeline.check_s (Session.create ?cache ()) src with
  | Error f -> Error (Pipeline.failure_to_string f)
  | Ok r ->
      Ok
        ( r.Pipeline.rp_valid,
          List.map (fun co -> co.Pipeline.co_verdict) r.Pipeline.rp_obligations )

let test_oracle_equivalence () =
  let warm = Cache.create () in
  List.iter
    (fun (b : Dml_programs.Programs.benchmark) ->
      let name = b.Dml_programs.Programs.name in
      let src = b.Dml_programs.Programs.source in
      let bare = project src in
      let cold = project ~cache:(Cache.create ()) src in
      let first = project ~cache:warm src in
      let second = project ~cache:warm src in
      Alcotest.(check bool) (name ^ ": cold cache matches no cache") true (cold = bare);
      Alcotest.(check bool) (name ^ ": shared cache matches no cache") true (first = bare);
      Alcotest.(check bool) (name ^ ": warm replay matches no cache") true (second = bare))
    Dml_programs.Programs.all

(* --- warm batch pass: strictly fewer solver calls ------------------------------- *)

let test_warm_pass_amortizes () =
  let cache = Cache.create () in
  let run_pass () =
    let before = Cache.snapshot cache in
    List.iter
      (fun (b : Dml_programs.Programs.benchmark) ->
        match Pipeline.check_s (Session.create ~cache ()) b.Dml_programs.Programs.source with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "static failure: %s" (Pipeline.failure_to_string f))
      Dml_programs.Programs.table_benchmarks;
    Cache.diff (Cache.snapshot cache) before
  in
  let p1 = run_pass () in
  let p2 = run_pass () in
  (* misses are exactly the solver calls made under a cache *)
  Alcotest.(check bool) "cold pass solves" true (p1.Cache.s_misses > 0);
  Alcotest.(check bool) "cold pass already shares goals" true (p1.Cache.s_hits > 0);
  Alcotest.(check int) "warm pass performs zero solver calls" 0 p2.Cache.s_misses;
  Alcotest.(check bool) "warm pass answers everything from the cache" true
    (p2.Cache.s_hits >= p1.Cache.s_misses);
  Alcotest.(check bool) "warm pass strictly fewer solver calls than cold" true
    (p2.Cache.s_misses < p1.Cache.s_misses)

(* --- token soup: cache-on/off equivalence on arbitrary inputs --------------------- *)

let token_fragments =
  [|
    "fun "; "val "; "let "; "in "; "end "; "if "; "then "; "else "; "where ";
    "sub"; "update"; "array"; "length "; "("; ")"; "{"; "}"; "["; "]"; "<|";
    "->"; "="; "<"; "<="; "+"; "-"; "*"; ","; ";"; ":"; "x"; "y "; "i ";
    "0 "; "1 "; "42 "; "nat"; "int"; "bool "; "true "; "false "; "\n"; "  ";
  |]

let gen_token_soup =
  QCheck.make ~print:String.escaped
    QCheck.Gen.(map (String.concat "") (list_size (int_range 0 40) (oneofa token_fragments)))

let prop_token_soup_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"cache preserves outcomes on token soup"
       gen_token_soup (fun src -> project src = project ~cache:(Cache.create ()) src))

let () =
  Alcotest.run "cache"
    [
      ( "canon",
        [
          Alcotest.test_case "alpha renaming" `Quick test_alpha_renaming;
          Alcotest.test_case "hypothesis order" `Quick test_hyp_order_and_duplication;
          Alcotest.test_case "atom equivalences" `Quick test_atom_equivalences;
          Alcotest.test_case "distinct goals" `Quick test_distinct_goals_differ;
          Alcotest.test_case "non-affine atoms" `Quick test_nonaffine_stable;
          Alcotest.test_case "corpus collisions" `Quick test_corpus_no_collisions;
        ] );
      ( "store",
        [
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "cache eviction counter" `Quick test_cache_eviction_counter;
          Alcotest.test_case "tier rules" `Quick test_tier_rules;
        ] );
      ( "persist",
        [
          Alcotest.test_case "disk roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "bit flip" `Quick test_bit_flip_is_a_miss;
          Alcotest.test_case "truncation" `Quick test_truncation_is_a_miss;
          Alcotest.test_case "foreign file" `Quick test_foreign_file_is_a_miss;
          Alcotest.test_case "cache-level corruption" `Quick test_cache_level_corruption;
          Alcotest.test_case "unique temp names" `Quick test_tmp_names_unique;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "quarantine" `Quick test_quarantine;
          Alcotest.test_case "entry-cap sweep" `Quick test_sweep_cap;
          Alcotest.test_case "byte-cap sweep" `Quick test_sweep_byte_cap;
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
        ] );
      ( "solver",
        [
          Alcotest.test_case "hits and stats" `Quick test_solver_hits;
          Alcotest.test_case "warm pass amortizes" `Quick test_warm_pass_amortizes;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "corpus equivalence" `Quick test_oracle_equivalence;
          prop_token_soup_oracle;
        ] );
    ]
