(* Unit tests for the latency-gate decision logic (bench/gate_core.ml): one
   case per malformed-input failure mode, each pinning both the [invalid]
   constructor and the exit code 2 — the regression that motivated the split
   was a zero-sample report whose vacuous p95 of 0.0 sailed through as
   PASSED — plus the two legitimate verdicts (within band / regressed). *)

module Gate_core = Dml_gate.Gate_core
module Percentile = Dml_gate.Percentile
module J = Dml_obs.Json

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) ("gate_test_" ^ name) in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

(* a minimal but schema-complete dml-load/1 document *)
let report_doc ?(schema = {|"dml-load/1"|}) ~p95 ~requests () =
  Printf.sprintf
    {|{"schema": %s, "warm_latency": {"p95_ms": %g, "requests": %d}}|}
    schema p95 requests

let good ~p95 = report_doc ~p95 ~requests:640 ()

let check_invalid name path expect_ctor =
  match Gate_core.read_report path with
  | Ok _ -> Alcotest.fail (name ^ ": expected invalid input to be rejected")
  | Error e ->
      Alcotest.(check bool)
        (name ^ ": constructor")
        true (expect_ctor e);
      Alcotest.(check int)
        (name ^ ": exit code")
        2
        (Gate_core.exit_code (Error e));
      (* every diagnostic names the offending file *)
      let msg = Gate_core.invalid_to_string e in
      Alcotest.(check bool)
        (name ^ ": diagnostic cites the path")
        true
        (let plen = String.length path and mlen = String.length msg in
         let rec find i =
           i + plen <= mlen && (String.sub msg i plen = path || find (i + 1))
         in
         find 0)

let test_missing_file () =
  check_invalid "missing" "/nonexistent/gate_test_missing.json" (function
    | Gate_core.Unreadable _ -> true
    | _ -> false)

let test_invalid_json () =
  let path = write_tmp "garbage.json" "not json {" in
  check_invalid "unparsable" path (function Gate_core.Unparsable _ -> true | _ -> false);
  Sys.remove path

let test_wrong_schema () =
  let path = write_tmp "schema.json" (report_doc ~schema:{|"dml-bench/1"|} ~p95:4.0 ~requests:640 ()) in
  check_invalid "bad schema" path (function
    | Gate_core.Bad_schema { found = Some "dml-bench/1"; _ } -> true
    | _ -> false);
  Sys.remove path

let test_missing_field () =
  let path = write_tmp "nofield.json" {|{"schema": "dml-load/1", "warm_latency": {}}|} in
  check_invalid "missing field" path (function
    | Gate_core.Missing_field _ -> true
    | _ -> false);
  Sys.remove path

(* the motivating bug: zero warm samples means p95 = 0.0, which is below any
   bound — the gate must refuse to judge, not report PASSED *)
let test_zero_samples () =
  let path = write_tmp "empty.json" (report_doc ~p95:0.0 ~requests:0 ()) in
  check_invalid "no warm samples" path (function
    | Gate_core.No_warm_samples _ -> true
    | _ -> false);
  Sys.remove path

let test_within_band () =
  let run = write_tmp "run_ok.json" (good ~p95:5.0) in
  let baseline = write_tmp "base_ok.json" (good ~p95:4.0) in
  (match Gate_core.evaluate ~run ~baseline ~factor:3.0 ~slack_ms:5.0 with
  | Ok v ->
      Alcotest.(check bool) "not regressed" false v.Gate_core.regressed;
      Alcotest.(check int) "exit 0" 0 (Gate_core.exit_code (Ok v))
  | Error e -> Alcotest.fail (Gate_core.invalid_to_string e));
  Sys.remove run;
  Sys.remove baseline

let test_regressed () =
  let run = write_tmp "run_slow.json" (good ~p95:100.0) in
  let baseline = write_tmp "base_slow.json" (good ~p95:4.0) in
  (match Gate_core.evaluate ~run ~baseline ~factor:3.0 ~slack_ms:5.0 with
  | Ok v ->
      Alcotest.(check bool) "regressed" true v.Gate_core.regressed;
      Alcotest.(check (float 1e-9)) "bound is base * factor + slack" 17.0 v.Gate_core.bound;
      Alcotest.(check int) "exit 1" 1 (Gate_core.exit_code (Ok v))
  | Error e -> Alcotest.fail (Gate_core.invalid_to_string e));
  Sys.remove run;
  Sys.remove baseline

(* an invalid baseline is as disqualifying as an invalid run *)
let test_invalid_baseline () =
  let run = write_tmp "run_v.json" (good ~p95:5.0) in
  (match Gate_core.evaluate ~run ~baseline:"/nonexistent/base.json" ~factor:3.0 ~slack_ms:5.0 with
  | Ok _ -> Alcotest.fail "expected the missing baseline to be rejected"
  | Error e -> Alcotest.(check int) "exit 2" 2 (Gate_core.exit_code (Error e)));
  Sys.remove run

(* --- the shared percentile estimator ------------------------------------------ *)

(* Nearest-rank edges for the estimator both latency harnesses lean on
   (bench/load and bench/incr): the empty population (0.0 at every q — the
   caller distinguishes "measured nothing" by the count, which is the
   No_warm_samples story above), the one-sample population (that sample at
   every q), and the textbook ranks on a small known population. *)

let test_percentile_empty () =
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) (Printf.sprintf "empty at q=%g" q) 0. (Percentile.of_samples [] q))
    [ 0.0; 0.5; 0.95; 1.0 ];
  match Percentile.latency_doc [] with
  | J.Obj (("requests", J.Int 0) :: rest) ->
      List.iter
        (fun (k, v) ->
          Alcotest.(check bool) (k ^ " is 0.0 on an empty population") true (v = J.Float 0.))
        rest
  | _ -> Alcotest.fail "latency_doc [] should lead with requests=0"

let test_percentile_one_sample () =
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "one sample at q=%g" q)
        7.25
        (Percentile.of_samples [ 7.25 ] q))
    [ 0.0; 0.5; 0.95; 1.0 ]

let test_percentile_ranks () =
  (* ten distinct samples, shuffled: nearest-rank q*n lands exactly *)
  let samples = [ 9.; 2.; 7.; 1.; 10.; 4.; 6.; 3.; 8.; 5. ] in
  List.iter
    (fun (q, expect) ->
      Alcotest.(check (float 0.)) (Printf.sprintf "q=%g" q) expect (Percentile.of_samples samples q))
    [ (0.50, 5.); (0.90, 9.); (0.95, 10.); (0.99, 10.); (1.0, 10.) ];
  (* the summary object pins the dml-load/1 field set and order *)
  match Percentile.latency_doc samples with
  | J.Obj fields ->
      Alcotest.(check (list string)) "field order"
        [ "requests"; "p50_ms"; "p90_ms"; "p95_ms"; "p99_ms"; "max_ms" ]
        (List.map fst fields)
  | _ -> Alcotest.fail "latency_doc should be an object"

let () =
  Alcotest.run "gate"
    [
      ( "invalid-input",
        [
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "invalid JSON" `Quick test_invalid_json;
          Alcotest.test_case "wrong schema" `Quick test_wrong_schema;
          Alcotest.test_case "missing p95 field" `Quick test_missing_field;
          Alcotest.test_case "zero warm samples" `Quick test_zero_samples;
          Alcotest.test_case "invalid baseline" `Quick test_invalid_baseline;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "within band" `Quick test_within_band;
          Alcotest.test_case "regressed" `Quick test_regressed;
        ] );
      ( "percentile",
        [
          Alcotest.test_case "empty population" `Quick test_percentile_empty;
          Alcotest.test_case "one sample" `Quick test_percentile_one_sample;
          Alcotest.test_case "nearest-rank" `Quick test_percentile_ranks;
        ] );
    ]
