.PHONY: all check build test fuzz bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# A fuzz smoke run with a hard timeout: the budgeted solver must never hang,
# so a wedged run is itself a failure.
fuzz:
	timeout 300 dune exec test/test_fuzz_pipeline.exe
	timeout 300 dune exec test/test_budget.exe

check: build
	timeout 600 dune runtest
	$(MAKE) fuzz

# Machine-readable benchmark artifacts: the batch checker's aggregate report
# (schema dml-batch/1) and the Bechamel microbenchmarks (schema dml-bench/1).
bench-json: build
	dune exec bin/dmlc.exe -- batch --all --json > BENCH_batch.json
	dune exec bench/main.exe -- --json BENCH_micro.json

clean:
	dune clean
