.PHONY: all check build test fuzz bench-json bench-load bench-gate bench-solver bench-incr bench-native clean

all: build

build:
	dune build @all

test:
	dune runtest

# A fuzz smoke run with a hard timeout: the budgeted solver must never hang,
# so a wedged run is itself a failure.
fuzz:
	timeout 300 dune exec test/test_fuzz_pipeline.exe
	timeout 300 dune exec test/test_budget.exe

check: build
	timeout 600 dune runtest
	$(MAKE) fuzz

# Machine-readable benchmark artifacts: the batch checker's aggregate report
# (schema dml-batch/1) and the Bechamel microbenchmarks (schema dml-bench/1).
bench-json: build
	dune exec bin/dmlc.exe -- batch --all --json > BENCH_batch.json
	dune exec bench/main.exe -- --out BENCH_micro.json

# The dmld fault-injection load harness (schema dml-load/1): concurrent
# clients against a pooled server with injected worker crashes and hangs.
# Exits non-zero if any request degrades to a dropped or malformed response.
bench-load: build
	timeout 300 dune exec bench/load.exe -- --out BENCH_dmld.json

# Latency regression gate: run the harness at the baseline's configuration
# and fail when the warm p95 regresses past the checked-in band (wide by
# design — it catches lost-memo-class regressions, not percent drift).
bench-gate: bench-load
	dune exec bench/gate.exe -- --run BENCH_dmld.json --baseline bench/baseline_dmld.json

# The two-lane solver ablation (schema dml-bench/1): every Table 1 proof
# obligation solved on the bignum lane and on the machine-int lane, with the
# native/bignum speedup recorded in the artifact.
bench-solver: build
	timeout 300 dune exec bench/solver.exe -- --out BENCH_solver.json

# Incremental recheck latency by edit size (schema dml-bench/1): the Table 1
# corpus as one editor buffer, re-checked after a 1-declaration, ~10% and
# 100% edit; each row pairs the incremental figure with a cold full check
# and asserts the reports are byte-identical first.
bench-incr: build
	timeout 300 dune exec bench/incr.exe -- --out BENCH_incr.json

# Measured wall-clock Table 3 on compiled native binaries (schema
# dml-bench/1): each kernel built twice by the codegen backend — all accesses
# checked vs proven sites unsafe — and timed at paper scale.  Prints a
# notice and exits 0 when the container has no OCaml compiler.
bench-native: build
	timeout 600 dune exec bench/native.exe -- --out BENCH_native.json

clean:
	dune clean
