.PHONY: all check build test fuzz clean

all: build

build:
	dune build @all

test:
	dune runtest

# A fuzz smoke run with a hard timeout: the budgeted solver must never hang,
# so a wedged run is itself a failure.
fuzz:
	timeout 300 dune exec test/test_fuzz_pipeline.exe
	timeout 300 dune exec test/test_budget.exe

check: build
	timeout 600 dune runtest
	$(MAKE) fuzz

clean:
	dune clean
